package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
)

// concurrentQueries is a mixed workload touching visible, hidden and
// join paths.
var concurrentQueries = []string{
	`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`,
	`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'`,
	paperQuery,
}

// TestConcurrentQueries runs many goroutines issuing mixed Query /
// Prepare / Plans / QueryWithPlan calls against one shared DB and checks
// every goroutine observes identical results. Run with -race.
func TestConcurrentQueries(t *testing.T) {
	db, _, _ := loadTiny(t)

	// Single-threaded baseline row counts.
	want := map[string]int{}
	for _, q := range concurrentQueries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = len(res.Rows)
	}

	const goroutines = 16
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := concurrentQueries[(g+i)%len(concurrentQueries)]
				switch (g + i) % 3 {
				case 0: // optimizer path
					res, err := db.Query(q)
					if err != nil {
						errc <- err
						return
					}
					if len(res.Rows) != want[q] {
						errc <- fmt.Errorf("goroutine %d: %s: got %d rows, want %d", g, q, len(res.Rows), want[q])
						return
					}
				case 1: // prepare + forced plan path
					bound, err := db.Prepare(q)
					if err != nil {
						errc <- err
						return
					}
					specs := db.Plans(bound)
					if len(specs) == 0 {
						errc <- fmt.Errorf("goroutine %d: no plans for %s", g, q)
						return
					}
					res, err := db.QueryWithPlan(bound, specs[(g+i)%len(specs)])
					if err != nil {
						errc <- err
						return
					}
					if len(res.Rows) != want[q] {
						errc <- fmt.Errorf("goroutine %d: forced plan %s: got %d rows, want %d", g, q, len(res.Rows), want[q])
						return
					}
				case 2: // host-side-only path
					bound, err := db.Prepare(q)
					if err != nil {
						errc <- err
						return
					}
					if _, err := db.Estimate(bound, db.Plans(bound)[0]); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestConcurrentSessions drives the session layer: one session per
// goroutine, per-session stats accounted, clean Close.
func TestConcurrentSessions(t *testing.T) {
	db, _, _ := loadTiny(t)

	const goroutines = 8
	const iters = 3
	sessions := make([]*Session, goroutines)
	for i := range sessions {
		s, err := db.NewSession()
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = s
	}
	if got := db.OpenSessions(); got != goroutines {
		t.Fatalf("OpenSessions = %d, want %d", got, goroutines)
	}

	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g, s := range sessions {
		wg.Add(1)
		go func(g int, s *Session) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := concurrentQueries[(g+i)%len(concurrentQueries)]
				if _, err := s.Query(q); err != nil {
					errc <- err
					return
				}
			}
		}(g, s)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for _, s := range sessions {
		st := s.Stats()
		if st.Queries != iters {
			t.Errorf("session %d: Queries = %d, want %d", s.ID(), st.Queries, iters)
		}
		if st.DeviceTime <= 0 {
			t.Errorf("session %d: no device time accounted", s.ID())
		}
		if st.LastReport == nil {
			t.Errorf("session %d: no last report", s.ID())
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Errorf("second Close = %v, want nil", err)
		}
	}
	if got := db.OpenSessions(); got != 0 {
		t.Fatalf("OpenSessions after close = %d, want 0", got)
	}
	if _, err := sessions[0].Query(concurrentQueries[0]); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("query on closed session = %v, want ErrSessionClosed", err)
	}
}

// TestCloseLifecycle checks DB.Close semantics: idempotent, fails new
// work, does not disturb finished results.
func TestCloseLifecycle(t *testing.T) {
	db, _, _ := loadTiny(t)
	res, err := db.Query(concurrentQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := db.Query(concurrentQueries[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Query after Close = %v, want ErrClosed", err)
	}
	if _, err := db.Prepare(concurrentQueries[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("Prepare after Close = %v, want ErrClosed", err)
	}
	if err := s.Ping(); !errors.Is(err, ErrClosed) {
		t.Fatalf("session Ping after Close = %v, want ErrClosed", err)
	}
	if _, err := db.NewSession(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewSession after Close = %v, want ErrClosed", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("pre-close result lost")
	}
}

// TestStageEnsureBuilt exercises the driver's staged-load path: DDL and
// INSERTs across several Stage calls, finalized by EnsureBuilt.
func TestStageEnsureBuilt(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Stage(`CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20))`); err != nil {
		t.Fatal(err)
	}
	if err := db.Stage(`INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain')`); err != nil {
		t.Fatal(err)
	}
	if db.Loaded() {
		t.Fatal("loaded before EnsureBuilt")
	}
	if err := db.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureBuilt(); err != nil {
		t.Fatalf("second EnsureBuilt = %v, want nil", err)
	}
	res, err := db.Query(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str() != "Ellis" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Post-build INSERTs are live DML now: they land in the RAM delta and
	// are immediately visible to queries.
	if err := db.Stage(`INSERT INTO Doctor VALUES (3, 'Novak', 'France')`); err != nil {
		t.Fatalf("post-build INSERT: %v", err)
	}
	res, err = db.Query(`SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("after live INSERT rows = %v", res.Rows)
	}
	// DDL stays frozen after the bulk load.
	if err := db.Stage(`CREATE TABLE Late (ID INTEGER PRIMARY KEY)`); err == nil {
		t.Fatal("DDL after build should fail")
	}
}

// TestConcurrentStageAndQuery checks the load/query state machine under
// concurrency: goroutines race EnsureBuilt and queries; all queries that
// succeed must see the full dataset.
func TestConcurrentStageAndQuery(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	ds := datagen.Generate(datagen.Tiny())
	if err := db.LoadDataset(ds); err != nil {
		t.Fatal(err)
	}
	want, err := db.Query(concurrentQueries[0])
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := db.EnsureBuilt(); err != nil {
				errc <- err
				return
			}
			res, err := db.Query(concurrentQueries[0])
			if err != nil {
				errc <- err
				return
			}
			if len(res.Rows) != len(want.Rows) {
				errc <- fmt.Errorf("got %d rows, want %d", len(res.Rows), len(want.Rows))
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
