package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/oracle"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

// TestInsertDenseKeyRowNumber is the regression test for the dense-PK
// violation message: a failing row in a multi-row INSERT must be
// reported with its own 1-based row index, not the expected key.
func TestInsertDenseKeyRowNumber(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecDDL(`CREATE TABLE T (ID INTEGER PRIMARY KEY, X INTEGER)`); err != nil {
		t.Fatal(err)
	}
	stmt, err := sql.Parse(`INSERT INTO T VALUES (1, 10), (2, 20), (7, 30)`)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Insert(stmt.(*sql.Insert))
	if err == nil {
		t.Fatal("non-dense third row accepted")
	}
	if !strings.Contains(err.Error(), "row 3 needs key 3") {
		t.Fatalf("error = %q, want it to report row 3 needing key 3", err)
	}

	// Same contract on the live (post-build) insert path.
	if err := db.Build(); err != nil {
		t.Fatal(err)
	}
	stmt, err = sql.Parse(`INSERT INTO T VALUES (3, 1), (4, 2), (9, 3)`)
	if err != nil {
		t.Fatal(err)
	}
	err = db.Insert(stmt.(*sql.Insert))
	if err == nil {
		t.Fatal("non-dense live insert accepted")
	}
	if !strings.Contains(err.Error(), "row 3 needs key 5") {
		t.Fatalf("live-path error = %q, want it to report row 3 needing key 5", err)
	}
}

// TestLiveDMLBasic walks the whole live-DML lifecycle on a small
// hand-written database: post-build INSERT, UPDATE, DELETE with virtual
// cascade, CHECKPOINT compaction with dense renumbering.
func TestLiveDMLBasic(t *testing.T) {
	db, err := Open()
	if err != nil {
		t.Fatal(err)
	}
	script := `
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`
	if err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}

	// Live INSERT: immediately visible.
	n, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-03', 'Sclerosis', 2)`)
	if err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	res, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("after insert rows = %v", res.Rows)
	}

	// UPDATE a hidden column: the base index answers stale, the delta
	// merge must correct it.
	n, err = db.Exec(`UPDATE Visit SET Purpose = 'Flu' WHERE VisID = 2`)
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	res, err = db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[0][0].Int() != 3 || res.Rows[1][0].Int() != 4 {
		t.Fatalf("after update rows = %v", res.Rows)
	}

	// DELETE a doctor: visits referencing it die virtually (cascade).
	n, err = db.Exec(`DELETE FROM Doctor WHERE Country = 'Spain'`)
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	res, err = db.Query(`SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Date > 2005-01-01`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 { // visits 2 and 4 referenced doctor 2
		t.Fatalf("after cascade rows = %v", res.Rows)
	}

	// RowsAffected counts live rows only: doctor 2 is already dead.
	n, err = db.Exec(`DELETE FROM Doctor WHERE Country = 'Spain'`)
	if err != nil || n != 0 {
		t.Fatalf("re-delete: n=%d err=%v", n, err)
	}

	// CHECKPOINT: merge to flash, renumber densely.
	clockBefore := db.Clock().Now()
	absorbed, err := db.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if absorbed == 0 {
		t.Fatal("checkpoint absorbed nothing")
	}
	if db.Clock().Now() <= clockBefore {
		t.Fatal("checkpoint charged no simulated time (erase/program must be paid)")
	}
	if db.RowCount("Visit") != 2 || db.RowCount("Doctor") != 1 {
		t.Fatalf("post-checkpoint counts: visit=%d doctor=%d", db.RowCount("Visit"), db.RowCount("Doctor"))
	}
	res, err = db.Query(`SELECT Vis.VisID, Vis.Purpose, Doc.Name FROM Visit Vis, Doctor Doc WHERE Vis.DocID = Doc.DocID`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("post-checkpoint rows = %v", res.Rows)
	}
	// Survivors renumbered 1..N in old-ID order: old visits 1 and 3.
	if res.Rows[0][0].Int() != 1 || res.Rows[1][0].Int() != 2 {
		t.Fatalf("post-checkpoint renumbering: %v", res.Rows)
	}
	if res.Rows[0][1].Str() != "Checkup" || res.Rows[1][1].Str() != "Sclerosis" {
		t.Fatalf("post-checkpoint values: %v", res.Rows)
	}

	// The delta is empty again and its RAM grant fully released.
	if got := db.DeltaStats(); len(got) != 0 {
		t.Fatalf("delta stats after checkpoint: %+v", got)
	}
	for _, u := range db.Device().RAM.Snapshot() {
		if strings.HasPrefix(u.Label, "delta:") {
			t.Fatalf("delta RAM grant leaked after checkpoint: %+v", u)
		}
	}

	// Identifiers continue densely from the compacted state.
	if _, err := db.Exec(`INSERT INTO Visit VALUES (3, DATE '2007-05-05', 'Checkup', 1)`); err != nil {
		t.Fatalf("post-checkpoint insert: %v", err)
	}
}

// TestLimitZeroEndToEnd checks the standard zero-row probe across plain,
// aggregate and ordered queries, against the oracle.
func TestLimitZeroEndToEnd(t *testing.T) {
	db, orc, _ := loadTiny(t)
	queries := []string{
		`SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity > 20 LIMIT 0`,
		`SELECT Pre.PreID FROM Prescription Pre LIMIT 0`,
		`SELECT COUNT(*) FROM Visit Vis WHERE Vis.Date > 2005-06-01 LIMIT 0`,
		`SELECT Pat.Country, COUNT(*) FROM Patient Pat GROUP BY Pat.Country ORDER BY COUNT(*) DESC LIMIT 0`,
		`SELECT DISTINCT Med.Type FROM Medicine Med LIMIT 0`,
	}
	for _, sqlText := range queries {
		res := checkAgainstOracle(t, db, orc, sqlText)
		if len(res.Rows) != 0 {
			t.Fatalf("%s returned %d rows", sqlText, len(res.Rows))
		}
	}
	// All plans agree on the probe.
	q, err := db.Prepare(queries[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range db.Plans(q) {
		r, err := db.QueryWithPlan(q, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Label, err)
		}
		if len(r.Rows) != 0 {
			t.Fatalf("plan %s returned rows under LIMIT 0", spec.Label)
		}
	}
}

// TestExplainShowsDelta checks that EXPLAIN surfaces the delta and
// tombstone cardinalities once DML happened.
func TestExplainShowsDelta(t *testing.T) {
	db, _, _ := loadTiny(t)
	if n, err := db.Exec(`DELETE FROM Prescription WHERE Quantity > 50`); err != nil || n == 0 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	q, err := db.Prepare(`SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity > 10`)
	if err != nil {
		t.Fatal(err)
	}
	text := db.Explain(q, db.Plans(q)[0])
	if !strings.Contains(text, "delta:") || !strings.Contains(text, "tombstones") {
		t.Fatalf("Explain missing delta cardinalities:\n%s", text)
	}
	if !strings.Contains(text, "delta merge:") {
		t.Fatalf("Explain missing delta merge footprint:\n%s", text)
	}
}

// dmlGen extends the query generator with randomized INSERT / UPDATE /
// DELETE / CHECKPOINT statements that are valid against the current
// oracle state (the oracle is the source of truth for live IDs and the
// next dense key; the engine must agree or the differential fails).
type dmlGen struct {
	*queryGen
	sch *schema.Schema
	orc *oracle.Oracle
}

// tableCols returns the generator's predicate columns for one table.
func (g *dmlGen) tableCols(table string) []genCol {
	var out []genCol
	for _, c := range g.cols() {
		if c.table == table {
			out = append(out, c)
		}
	}
	return out
}

var dmlTables = []string{"Doctor", "Patient", "Medicine", "Visit", "Prescription"}

// nextDML produces one random mutation statement, or "" when the drawn
// shape is impossible in the current state (caller retries).
func (g *dmlGen) nextDML() string {
	table := dmlTables[g.rng.Intn(len(dmlTables))]
	switch g.rng.Intn(4) {
	case 0:
		return g.genInsert(table)
	case 1:
		return g.genDelete(table)
	default:
		return g.genUpdate(table)
	}
}

func (g *dmlGen) genInsert(table string) string {
	t, _ := g.sch.Table(table)
	id := g.orc.NextID(table)
	nRows := 1 + g.rng.Intn(2)
	var rows []string
	for r := 0; r < nRows; r++ {
		var vals []string
		for _, c := range t.Columns {
			switch {
			case c.PrimaryKey:
				vals = append(vals, fmt.Sprint(id+uint32(r)))
			case c.IsForeignKey():
				live := g.orc.LiveIDs(c.RefTable)
				if len(live) == 0 {
					return ""
				}
				vals = append(vals, fmt.Sprint(live[g.rng.Intn(len(live))]))
			default:
				vals = append(vals, g.sample(table, c.Name).SQL())
			}
		}
		rows = append(rows, "("+join(vals, ", ")+")")
	}
	return "INSERT INTO " + table + " VALUES " + join(rows, ", ")
}

func (g *dmlGen) genDelete(table string) string {
	cols := g.tableCols(table)
	preds := g.wherePreds([]genCol{cols[g.rng.Intn(len(cols))]})
	return "DELETE FROM " + table + " WHERE " + join(preds, " AND ")
}

func (g *dmlGen) genUpdate(table string) string {
	t, _ := g.sch.Table(table)
	cols := g.tableCols(table)
	// 1-2 assignments over non-PK columns: dataset-pool literals, or a
	// live foreign-key retarget.
	var sets []string
	seen := map[string]bool{}
	for len(sets) < 1+g.rng.Intn(2) {
		var c *schema.Column
		nonPK := make([]*schema.Column, 0, len(t.Columns))
		for i := range t.Columns {
			if !t.Columns[i].PrimaryKey {
				nonPK = append(nonPK, &t.Columns[i])
			}
		}
		c = nonPK[g.rng.Intn(len(nonPK))]
		if seen[c.Name] {
			continue
		}
		seen[c.Name] = true
		if c.IsForeignKey() {
			live := g.orc.LiveIDs(c.RefTable)
			if len(live) == 0 {
				return ""
			}
			sets = append(sets, fmt.Sprintf("%s = %d", c.Name, live[g.rng.Intn(len(live))]))
		} else {
			sets = append(sets, fmt.Sprintf("%s = %s", c.Name, g.sample(table, c.Name).SQL()))
		}
	}
	preds := g.wherePreds([]genCol{cols[g.rng.Intn(len(cols))]})
	return "UPDATE " + table + " SET " + join(sets, ", ") + " WHERE " + join(preds, " AND ")
}

// TestPropertyDMLOracleDifferential is the live-DML differential
// property: >=500 randomized interleavings of INSERT / UPDATE / DELETE /
// CHECKPOINT with plain and post-operator (aggregate / ORDER BY /
// DISTINCT) queries, every query checked exactly against the mutable
// oracle and every mutation's RowsAffected compared. Runs under -race in
// CI.
func TestPropertyDMLOracleDifferential(t *testing.T) {
	db, orc, ds := loadTiny(t, WithCapture(trace.CaptureFull))
	g := &dmlGen{
		queryGen: &queryGen{rng: rand.New(rand.NewSource(47)), ds: ds},
		sch:      db.Schema(),
		orc:      orc,
	}

	iterations := 520
	if testing.Short() {
		iterations = 80
	}
	queries, mutations, affectedTotal := 0, 0, int64(0)
	for i := 0; i < iterations; i++ {
		switch roll := g.rng.Intn(10); {
		case roll < 4: // plain SPJ query
			sqlText := g.next()
			checkAgainstOracle(t, db, orc, sqlText)
			queries++
		case roll < 6: // post-operator query (aggregates, ORDER BY, DISTINCT)
			sqlText := g.nextPostOp()
			checkAgainstOracle(t, db, orc, sqlText)
			queries++
		case roll == 9 && i%37 == 0: // occasional checkpoint
			en, eerr := db.Exec("CHECKPOINT")
			on, oerr := orc.Exec("CHECKPOINT")
			if eerr != nil || oerr != nil {
				t.Fatalf("iter %d checkpoint: engine %v, oracle %v", i, eerr, oerr)
			}
			if en != on {
				t.Fatalf("iter %d checkpoint absorbed %d, oracle %d", i, en, on)
			}
		default: // mutation
			stmt := g.nextDML()
			if stmt == "" {
				continue
			}
			en, eerr := db.Exec(stmt)
			on, oerr := orc.Exec(stmt)
			if (eerr == nil) != (oerr == nil) {
				t.Fatalf("iter %d %q: engine err %v, oracle err %v", i, stmt, eerr, oerr)
			}
			if eerr != nil {
				t.Fatalf("iter %d %q: %v", i, stmt, eerr)
			}
			if en != on {
				t.Fatalf("iter %d %q: engine affected %d, oracle %d", i, stmt, en, on)
			}
			mutations++
			affectedTotal += en
		}
	}
	if queries < iterations/5 || mutations < iterations/5 {
		t.Fatalf("corpus degenerate: %d queries, %d mutations", queries, mutations)
	}
	if affectedTotal == 0 {
		t.Fatal("no mutation affected any row; generator miscalibrated")
	}

	// Final checkpoint: both sides agree, and the delta RAM grant is
	// fully released.
	en, eerr := db.Checkpoint()
	on, oerr := orc.Checkpoint()
	if eerr != nil || oerr != nil || en != on {
		t.Fatalf("final checkpoint: engine (%d, %v), oracle (%d, %v)", en, eerr, on, oerr)
	}
	for _, u := range db.Device().RAM.Snapshot() {
		if strings.HasPrefix(u.Label, "delta:") {
			t.Fatalf("delta RAM grant leaked: %+v", u)
		}
	}
	// Queries still agree on the compacted state.
	for i := 0; i < 20; i++ {
		checkAgainstOracle(t, db, orc, g.next())
		checkAgainstOracle(t, db, orc, g.nextPostOp())
	}

	// The whole mutating session leaks nothing and keeps the device's
	// one-way flow invariant.
	leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("DML session leaked: %v", leaks[0])
	}
	for _, e := range db.Recorder().Events() {
		if e.From == trace.Device && e.To != trace.Display {
			t.Fatalf("device sent %s to %s", e.Kind, e.To)
		}
	}
}

// TestDMLPreparedAndCached checks the compile-once/bind-many DML path
// and its plan-cache sharing.
func TestDMLPreparedAndCached(t *testing.T) {
	db, orc, _ := loadTiny(t)
	s, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	cd, err := s.CompileDML(`UPDATE Prescription SET Quantity = ? WHERE PreID = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if cd.NumParams() != 2 {
		t.Fatalf("NumParams = %d", cd.NumParams())
	}
	for i := 1; i <= 5; i++ {
		n, err := s.ExecCompiled(cd, []value.Value{value.NewInt(int64(40 + i)), value.NewInt(int64(i))})
		if err != nil || n != 1 {
			t.Fatalf("exec %d: n=%d err=%v", i, n, err)
		}
		if _, err := orc.Exec(fmt.Sprintf("UPDATE Prescription SET Quantity = %d WHERE PreID = %d", 40+i, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Same shape through a second session hits the shared cache.
	s2, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.CompileDML(`UPDATE Prescription SET Quantity = ? WHERE PreID = ?`); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.PlanCache.Hits != 1 {
		t.Fatalf("second session cache stats = %+v, want 1 hit", st.PlanCache)
	}
	checkAgainstOracle(t, db, orc, `SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre WHERE Pre.Quantity BETWEEN 41 AND 45`)
}

// TestAutoCheckpointDeltaLimit checks the deltalimit knob: the engine
// checkpoints by itself once the delta outgrows the limit.
func TestAutoCheckpointDeltaLimit(t *testing.T) {
	db, _, _ := loadTiny(t, WithDeltaLimit(8))
	for i := 0; i < 20; i++ {
		if _, err := db.Exec(fmt.Sprintf(`DELETE FROM Prescription WHERE PreID = %d`, i*3+1)); err != nil {
			t.Fatal(err)
		}
		if got := db.delta.Entries(); got >= 8 {
			t.Fatalf("delta grew to %d entries despite deltalimit=8", got)
		}
	}
}
