package core

import (
	"fmt"
	"testing"

	"github.com/ghostdb/ghostdb/internal/fault"
)

// tortureRounds is the number of DML+CHECKPOINT batches in the torture
// schedule; committed versions run 0 (fresh build) through tortureRounds.
const tortureRounds = 5

// tortureSchedule runs the deterministic DML schedule: per batch two
// inserts, an update, a delete, then CHECKPOINT. capture (when non-nil)
// is called with each committed version number, 0 first. It returns the
// number of committed checkpoints and whether the device died; any
// non-fault error fails the test.
func tortureSchedule(t *testing.T, db *DB, capture func(version int)) (committed int, died bool) {
	t.Helper()
	if capture != nil {
		capture(0)
	}
	for b := 1; b <= tortureRounds; b++ {
		rows := db.RowCount("Visit")
		nextVis := rows + 1
		stmts := []string{
			fmt.Sprintf(`INSERT INTO Visit VALUES (%d, DATE '2007-06-%02d', 'Torture%d', %d.5, %d)`,
				nextVis, (b%28)+1, b, b, (b%3)+1),
			fmt.Sprintf(`UPDATE Visit SET Purpose = 'Round%d' WHERE VisID = %d`, b, (b%rows)+1),
			fmt.Sprintf(`DELETE FROM Visit WHERE VisID = %d`, (b*2)%nextVis+1),
			fmt.Sprintf(`INSERT INTO Visit VALUES (%d, DATE '2007-07-%02d', 'Extra%d', %d.25, %d)`,
				nextVis+1, (b%28)+1, b, b, ((b+1)%3)+1),
		}
		for _, s := range stmts {
			if _, err := db.Exec(s); err != nil {
				if IsFaultFatal(err) {
					return committed, true
				}
				t.Fatalf("batch %d %q: %v", b, s, err)
			}
		}
		if _, err := db.Checkpoint(); err != nil {
			if IsFaultFatal(err) {
				return committed, true
			}
			t.Fatalf("batch %d checkpoint: %v", b, err)
		}
		committed++
		if capture != nil {
			capture(committed)
		}
	}
	return committed, false
}

// maxShardOps returns the largest per-device op count — the sweep range
// for cutop, which triggers on each shard's own counter.
func maxShardOps(db *DB) int64 {
	if db.shards == nil {
		return db.inj.Ops()
	}
	var m int64
	for _, c := range db.shards.children {
		if n := c.inj.Ops(); n > m {
			m = n
		}
	}
	return m
}

// runPowerCutTorture is the crash-consistency acceptance gate: sweep
// power cuts across the whole operational op range, and after every
// single one, Recover from a flash snapshot must land on exactly the
// state of the last successful CHECKPOINT — never a torn mix, never a
// lost commit.
func runPowerCutTorture(t *testing.T, shards, trials int) {
	opts := []Option{}
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}

	// Oracle: the same schedule fault-free, capturing the query corpus
	// at every committed version.
	oracle := buildRecoverDB(t, opts...)
	corpora := make([][]string, 0, tortureRounds+1)
	if c, died := tortureSchedule(t, oracle, func(int) {
		corpora = append(corpora, corpusOf(t, oracle))
	}); died || c != tortureRounds {
		t.Fatalf("oracle run died=%v committed=%d", died, c)
	}

	// Probe: count the operational device ops the schedule consumes (an
	// empty plan injects nothing but counts), so cuts sweep the full
	// range with a tail of trials that outlive the schedule.
	probe := buildRecoverDB(t, append(opts[:len(opts):len(opts)], WithFaultPlan(&fault.Plan{}))...)
	tortureSchedule(t, probe, nil)
	opRange := maxShardOps(probe) + maxShardOps(probe)/20 + 2

	for i := 0; i < trials; i++ {
		cutop := 1 + int64(i)*opRange/int64(trials)
		plan := &fault.Plan{CutAtOp: cutop}
		db := buildRecoverDB(t, append(opts[:len(opts):len(opts)], WithFaultPlan(plan))...)
		committed, died := tortureSchedule(t, db, nil)
		if !died && committed != tortureRounds {
			t.Fatalf("cutop=%d: alive but committed %d/%d", cutop, committed, tortureRounds)
		}
		snap, err := db.Snapshot()
		if err != nil {
			t.Fatalf("cutop=%d: snapshot: %v", cutop, err)
		}
		ndb, info, err := Recover(snap)
		if err != nil {
			t.Fatalf("cutop=%d (died=%v, committed=%d): recover: %v", cutop, died, committed, err)
		}
		if int(info.Version) != committed {
			t.Fatalf("cutop=%d: recovered version %d, want %d (died=%v, shard versions %v)",
				cutop, info.Version, committed, died, info.ShardVersions)
		}
		got := corpusOf(t, ndb)
		want := corpora[committed]
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("cutop=%d: recovered corpus diverged at version %d, query %d:\nwant %s\ngot  %s",
					cutop, committed, q, want[q], got[q])
			}
		}
	}
}

func tortureTrials(t *testing.T) int {
	if testing.Short() {
		return 12
	}
	return 100
}

func TestPowerCutTortureSingle(t *testing.T)  { runPowerCutTorture(t, 1, tortureTrials(t)) }
func TestPowerCutTortureSharded(t *testing.T) { runPowerCutTorture(t, 4, tortureTrials(t)) }

// TestTransientFaultsDifferential is the fault-plan differential gate: a
// plan of transient-only faults must change nothing except the
// simulated time the retries cost — every query and DML result stays
// bit-identical to the fault-free run, and the retry counters prove the
// plan actually fired.
func TestTransientFaultsDifferential(t *testing.T) {
	oracle := buildRecoverDB(t)
	var want [][]string
	if c, died := tortureSchedule(t, oracle, func(int) {
		want = append(want, corpusOf(t, oracle))
	}); died || c != tortureRounds {
		t.Fatalf("oracle run died=%v committed=%d", died, c)
	}

	plan, err := fault.ParsePlan("seed=7,read.transient=0.01,prog.transient=0.01,erase.transient=0.005,bus.transient=0.01")
	if err != nil {
		t.Fatal(err)
	}
	db := buildRecoverDB(t, WithFaultPlan(plan))
	var got [][]string
	if c, died := tortureSchedule(t, db, func(int) {
		got = append(got, corpusOf(t, db))
	}); died || c != tortureRounds {
		t.Fatalf("transient run died=%v committed=%d (transient faults must never kill the device)", died, c)
	}
	for v := range want {
		for q := range want[v] {
			if got[v][q] != want[v][q] {
				t.Fatalf("version %d query %d diverged under transient faults:\nwant %s\ngot  %s",
					v, q, want[v][q], got[v][q])
			}
		}
	}
	injected, retried := db.inj.Stats()
	if injected == 0 || retried == 0 {
		t.Fatalf("plan never fired: injected=%d retried=%d", injected, retried)
	}
	if err := db.FatalError(); err != nil {
		t.Fatalf("transient faults latched a fatal error: %v", err)
	}
}

// TestOneShotPermanentFault checks that a single permanent fault fails
// the operation with a typed error but leaves the device usable: the
// next query succeeds, and no fatal state is latched.
func TestOneShotPermanentFault(t *testing.T) {
	db := buildRecoverDB(t, WithFaultPlan(&fault.Plan{FailAtOp: 2}))
	_, err := db.Query(recoverQueries[1])
	if err == nil {
		t.Fatal("query over the one-shot fault succeeded")
	}
	if !IsFaultFatal(err) || IsDeviceDead(err) {
		t.Fatalf("error = %v, want a permanent (non-dead) fault", err)
	}
	if db.FatalError() != nil {
		t.Fatalf("one-shot fault latched the device dead: %v", db.FatalError())
	}
	res, err := db.Query(recoverQueries[1])
	if err != nil {
		t.Fatalf("query after one-shot fault: %v", err)
	}
	clean := buildRecoverDB(t)
	want, _ := clean.Query(recoverQueries[1])
	if fmt.Sprintf("%v", res.Rows) != fmt.Sprintf("%v", want.Rows) {
		t.Fatalf("post-fault rows diverge: %v vs %v", res.Rows, want.Rows)
	}
}

// TestDegradedReads kills one shard of four and checks the routing
// contract: root-involving queries fail fast naming the dead shard,
// while dimension-rooted queries are served from surviving replicas
// when WithDegradedReads is on — and fail fast when it is off.
func TestDegradedReads(t *testing.T) {
	kill := &fault.Plan{CutAtOp: 1}
	kill.SetShard(2)

	for _, degraded := range []bool{true, false} {
		db := buildRecoverDB(t, WithShards(4), WithFaultPlan(kill), WithDegradedReads(degraded))
		// First root query scatters to all shards and trips the cut.
		if _, err := db.Query(recoverQueries[1]); err == nil {
			t.Fatalf("degraded=%v: root query on a dying shard succeeded", degraded)
		}
		dimQ := `SELECT Doc.Name FROM Doctor Doc WHERE Doc.Country = 'France'`
		res, err := db.Query(dimQ)
		if degraded {
			if err != nil {
				t.Fatalf("degraded reads: dimension query not served from survivors: %v", err)
			}
			if len(res.Rows) != 2 {
				t.Fatalf("degraded dimension rows = %v", res.Rows)
			}
		} else if err == nil {
			t.Fatal("without degraded reads, a dimension query on a broken DB must fail fast")
		}
		// Root queries keep failing fast either way, naming the shard.
		if _, err := db.Query(recoverQueries[1]); err == nil {
			t.Fatalf("degraded=%v: root query with a dead shard succeeded", degraded)
		}
	}
}
