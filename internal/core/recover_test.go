package core

import (
	"fmt"
	"testing"
)

// recoverSchema loads a small two-table database exercising every
// recovery-relevant column shape: visible fixed (Date), hidden fixed
// (Float), hidden variable (CHAR), hidden foreign key, and visible
// strings on the dimension.
const recoverSchema = `
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20),
  Specialty CHAR(20) HIDDEN);
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  Toll FLOAT HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES
  (1, 'Ellis', 'France', 'Cardiology'),
  (2, 'Gall', 'Spain', 'Neurology'),
  (3, 'Imbert', 'France', 'Oncology');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 12.5, 1),
  (2, DATE '2006-11-20', 'Sclerosis', 40, 2),
  (3, DATE '2007-02-01', 'Sclerosis', 35.25, 1),
  (4, DATE '2007-03-12', 'Flu', 10, 3),
  (5, DATE '2007-04-02', 'Checkup', 11, 2),
  (6, DATE '2007-04-20', 'Flu', 9.75, 3);
`

// recoverQueries is the corpus compared between the original and the
// recovered database: full scans of both tables plus a join through the
// hidden foreign key filtered on a hidden column.
var recoverQueries = []string{
	`SELECT Doc.DocID, Doc.Name, Doc.Country, Doc.Specialty FROM Doctor Doc WHERE Doc.DocID > 0`,
	`SELECT Vis.VisID, Vis.Date, Vis.Purpose, Vis.Toll FROM Visit Vis WHERE Vis.VisID > 0`,
	`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc WHERE Vis.DocID = Doc.DocID AND Vis.Purpose = 'Sclerosis'`,
}

func corpusOf(t *testing.T, db *DB) []string {
	t.Helper()
	out := make([]string, 0, len(recoverQueries))
	for _, q := range recoverQueries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatalf("corpus query %q: %v", q, err)
		}
		out = append(out, fmt.Sprintf("%v", res.Rows))
	}
	return out
}

func assertCorpusEqual(t *testing.T, want, got []string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("corpus query %d diverged:\nwant %s\ngot  %s", i, want[i], got[i])
		}
	}
}

func buildRecoverDB(t *testing.T, opts ...Option) *DB {
	t.Helper()
	// Environment-selected backend first, so an explicit WithBackend in
	// opts (as the file-backend tests pass) always wins.
	db, err := Open(append(testBackendOptions(t), opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(recoverSchema); err != nil {
		t.Fatal(err)
	}
	if err := db.EnsureBuilt(); err != nil {
		t.Fatal(err)
	}
	return db
}

func recoverTrip(t *testing.T, opts ...Option) {
	t.Helper()
	db := buildRecoverDB(t, opts...)

	// Two committed rounds of DML, then uncommitted churn that a crash
	// must lose.
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`INSERT INTO Visit VALUES (7, DATE '2007-05-05', 'Checkup', 22, 1)`)
	mustExec(`UPDATE Visit SET Purpose = 'Relapse' WHERE VisID = 2`)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mustExec(`DELETE FROM Visit WHERE Purpose = 'Flu'`)
	mustExec(`INSERT INTO Visit VALUES (8, DATE '2007-06-01', 'Checkup', 18.5, 3)`)
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := corpusOf(t, db)
	mustExec(`UPDATE Visit SET Toll = 99 WHERE VisID = 1`) // volatile, must not survive

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ndb, info, err := Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 2 {
		t.Fatalf("recovered version = %d, want 2 (shard versions %v)", info.Version, info.ShardVersions)
	}
	if info.RolledBack {
		t.Fatalf("clean snapshot reported RolledBack")
	}
	assertCorpusEqual(t, want, corpusOf(t, ndb))
}

func TestSnapshotRecoverRoundTrip(t *testing.T)        { recoverTrip(t) }
func TestSnapshotRecoverRoundTripSharded(t *testing.T) { recoverTrip(t, WithShards(4)) }

// TestRecoverReshard recovers a single-device snapshot onto a sharded
// replacement (and the reverse): recovery reassembles the global row
// order first, so the shard count is free to change on the way back up.
func TestRecoverReshard(t *testing.T) {
	db := buildRecoverDB(t)
	if _, err := db.Exec(`DELETE FROM Visit WHERE Purpose = 'Checkup'`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := corpusOf(t, db)

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sharded, info, err := Recover(snap, WithShards(3))
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || sharded.ShardCount() != 3 {
		t.Fatalf("version=%d shards=%d, want 1 and 3", info.Version, sharded.ShardCount())
	}
	assertCorpusEqual(t, want, corpusOf(t, sharded))

	// And back down to one device.
	snap2, err := sharded.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	single, info2, err := Recover(snap2, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	// The resharded DB was rebuilt at its own version 0, and ShardCount
	// reports 0 for an unsharded database.
	if info2.Version != 0 || single.ShardCount() != 0 {
		t.Fatalf("version=%d shards=%d, want 0 and unsharded", info2.Version, single.ShardCount())
	}
	assertCorpusEqual(t, want, corpusOf(t, single))
}

// TestSnapshotFreshBuild recovers straight from the version-0 commit
// record written at the end of the bulk load.
func TestSnapshotFreshBuild(t *testing.T) {
	db := buildRecoverDB(t)
	want := corpusOf(t, db)
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	ndb, info, err := Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 0 || info.RolledBack {
		t.Fatalf("info = %+v, want version 0, no rollback", info)
	}
	assertCorpusEqual(t, want, corpusOf(t, ndb))
}
