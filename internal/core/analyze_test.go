package core

import (
	"context"
	"errors"
	"log/slog"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestIsExplain(t *testing.T) {
	yes := []string{
		"EXPLAIN SELECT 1",
		"explain analyze select Vis.VisID from Visit Vis",
		"  \n\tExPlAiN SELECT x FROM y",
		"explain",
	}
	no := []string{
		"SELECT 1",
		"explaining FROM y",
		"EXPLAIN2 SELECT",
		"",
		"   ",
	}
	for _, s := range yes {
		if !isExplain(s) {
			t.Errorf("isExplain(%q) = false, want true", s)
		}
	}
	for _, s := range no {
		if isExplain(s) {
			t.Errorf("isExplain(%q) = true, want false", s)
		}
	}
}

func TestExplainStatement(t *testing.T) {
	db, _, _ := loadTiny(t)
	defer db.Close()

	res, err := db.Query("EXPLAIN " + paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 1 || res.Columns[0] != "plan" {
		t.Fatalf("columns = %v, want [plan]", res.Columns)
	}
	var text strings.Builder
	for _, r := range res.Rows {
		text.WriteString(r[0].Str())
		text.WriteByte('\n')
	}
	out := text.String()
	for _, want := range []string{"EXPLAIN", "plan ", "query root:", "estimated:"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN output missing %q:\n%s", want, out)
		}
	}
	// Plain EXPLAIN must not execute: the operator table and the actual
	// summary only appear under ANALYZE.
	if strings.Contains(out, "actual:") {
		t.Errorf("EXPLAIN (no ANALYZE) rendered actuals:\n%s", out)
	}
}

func TestExplainAnalyzeStatement(t *testing.T) {
	db, orc, _ := loadTiny(t)
	defer db.Close()
	sess, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	res, err := sess.Query("EXPLAIN ANALYZE " + paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, r := range res.Rows {
		text.WriteString(r[0].Str())
		text.WriteByte('\n')
	}
	out := text.String()
	for _, want := range []string{"EXPLAIN ANALYZE", "operator", "est", "actual:", "Project"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}

	// The analyzed row count must match the oracle.
	_, wantRows, err := orc.Query(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil || res.Report.ResultRows != len(wantRows) {
		t.Fatalf("EXPLAIN ANALYZE report rows = %+v, oracle %d", res.Report, len(wantRows))
	}
}

func TestExplainAnalyzeParamsRejected(t *testing.T) {
	db, _, _ := loadTiny(t)
	defer db.Close()
	_, err := db.Query("EXPLAIN SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = ?")
	if err == nil || !strings.Contains(err.Error(), "unbound parameters") {
		t.Fatalf("err = %v, want unbound-parameters error", err)
	}
}

// TestExplainAnalyzeOracleDifferential is the acceptance check: on the
// randomized SPJ corpus, the actual per-operator cardinalities of
// EXPLAIN ANALYZE must match the oracle's tuple counts — the base
// pipeline's Project output (plus any DeltaScan output) equals the
// oracle's base row count, and the result cardinality equals the
// oracle's result row count.
func TestExplainAnalyzeOracleDifferential(t *testing.T) {
	db, orc, ds := loadTiny(t)
	defer db.Close()
	g := &queryGen{rng: rand.New(rand.NewSource(31)), ds: ds}

	iterations := 300
	if testing.Short() {
		iterations = 40
	}
	for i := 0; i < iterations; i++ {
		sqlText := g.next()
		a, err := db.ExplainAnalyze(sqlText)
		if err != nil {
			t.Fatalf("explain analyze %d %q: %v", i, sqlText, err)
		}
		_, baseRows, err := orc.QueryBase(sqlText)
		if err != nil {
			t.Fatalf("oracle base %d %q: %v", i, sqlText, err)
		}
		_, wantRows, err := orc.Query(sqlText)
		if err != nil {
			t.Fatalf("oracle %d %q: %v", i, sqlText, err)
		}

		var pipelineOut int64
		var sawProject, sawEstimate bool
		for _, op := range a.Ops {
			switch op.Name {
			case "Project":
				pipelineOut += op.TuplesOut
				sawProject = true
			case "DeltaScan":
				pipelineOut += op.TuplesOut
			}
			if op.EstRows >= 0 {
				sawEstimate = true
			}
		}
		if !sawProject {
			t.Fatalf("query %d %q: no Project operator in %v", i, sqlText, a.Ops)
		}
		if !sawEstimate {
			t.Fatalf("query %d %q: no operator carries an estimate", i, sqlText)
		}
		if pipelineOut != int64(len(baseRows)) {
			t.Fatalf("query %d %q / %s: pipeline out %d tuples, oracle base %d",
				i, sqlText, a.Spec.Label, pipelineOut, len(baseRows))
		}
		if a.Result.Report.ResultRows != len(wantRows) {
			t.Fatalf("query %d %q: %d result rows, oracle %d",
				i, sqlText, a.Result.Report.ResultRows, len(wantRows))
		}
		if a.Cards.Candidates < 1 || a.Cards.Survivors < 1 {
			t.Fatalf("query %d %q: degenerate estimates %+v", i, sqlText, a.Cards)
		}
	}
}

func TestQueryContextCancellation(t *testing.T) {
	db, _, _ := loadTiny(t)
	defer db.Close()
	sess, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = sess.Query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'",
		WithContext(ctx))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	snap := db.MetricsSnapshot()
	if v, ok := snap.Get("queries_canceled_total"); !ok || v.Value != 1 {
		t.Fatalf("queries_canceled_total = %+v, want 1", v)
	}

	// A live context must not interfere.
	res, err := sess.Query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'",
		WithContext(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("expected rows")
	}
}

func TestExecutorHonorsDeadline(t *testing.T) {
	db, _, _ := loadTiny(t)
	defer db.Close()

	// An already-expired deadline surfaces as DeadlineExceeded, from
	// whichever batch boundary sees it first.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := db.Query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'",
		WithContext(ctx))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

func TestQueryHooks(t *testing.T) {
	var events []QueryEvent
	db, _, _ := loadTiny(t, WithQueryHook(func(ev QueryEvent) {
		events = append(events, ev)
	}))
	defer db.Close()

	const q = "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'"
	res, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want start+finish", len(events))
	}
	if events[0].Phase != QueryStart || events[1].Phase != QueryFinish {
		t.Fatalf("phases = %v, %v", events[0].Phase, events[1].Phase)
	}
	if events[1].Rows != len(res.Rows) || events[1].PlanLabel == "" || events[1].Sim <= 0 {
		t.Fatalf("finish event = %+v", events[1])
	}

	// Cancellation surfaces as an error-phase event.
	events = nil
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _ = db.Query(q, WithContext(ctx))
	if len(events) != 2 || events[1].Phase != QueryError || !errors.Is(events[1].Err, context.Canceled) {
		t.Fatalf("events = %+v, want start+error(canceled)", events)
	}
}

func TestMetricsDisabled(t *testing.T) {
	db, _, _ := loadTiny(t, WithMetrics(false))
	defer db.Close()
	if snap := db.MetricsSnapshot(); snap != nil {
		t.Fatalf("snapshot = %v, want nil with metrics off", snap)
	}
	sess, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if snap := sess.MetricsSnapshot(); snap != nil {
		t.Fatalf("session snapshot = %v, want nil with metrics off", snap)
	}
	res, err := sess.Query("SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'")
	if err != nil || len(res.Rows) == 0 {
		t.Fatalf("query with metrics off: %v (%d rows)", err, len(res.Rows))
	}
}

// TestMetricsFeed drives queries, DML, and a checkpoint through one DB
// and checks that every engine counter the registry advertises actually
// moves.
func TestMetricsFeed(t *testing.T) {
	db, _, _ := loadTiny(t)
	defer db.Close()

	const q = "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'"
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := db.Exec(`DELETE FROM Prescription WHERE Quantity > 50`); err != nil || n == 0 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	if _, err := db.Query(q); err != nil { // probes tombstones against the delta
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := db.CheckpointsRun(); got != 1 {
		t.Fatalf("CheckpointsRun = %d, want 1", got)
	}

	snap := db.MetricsSnapshot()
	want := map[string]int64{
		"queries_total":           4,
		"dml_statements_total":    1,
		"checkpoints_total":       1,
		"plan_cache_misses_total": 1, // first compilation of the SELECT
		"plan_cache_hits_total":   3, // its three repeats
	}
	for name, wantV := range want {
		v, ok := snap.Get(name)
		if !ok || v.Value != wantV {
			t.Errorf("%s = %+v, want %d", name, v, wantV)
		}
	}
	for _, positive := range []string{
		"rows_returned_total", "rows_affected_total", "batches_pulled_total",
		"flash_page_reads_total", "bus_bytes_total", "ram_high_water_bytes",
		"tombstone_probes_total",
	} {
		v, ok := snap.Get(positive)
		if !ok || v.Value <= 0 {
			t.Errorf("%s = %+v, want > 0", positive, v)
		}
	}
	for _, hist := range []struct {
		name  string
		count int64
	}{
		{"query_wall_ns", 4},
		{"query_sim_ns", 4},
		{"checkpoint_wall_ns", 1},
		{"checkpoint_sim_ns", 1},
	} {
		v, ok := snap.Get(hist.name)
		if !ok || v.Hist == nil || v.Hist.Count != hist.count {
			t.Errorf("%s = %+v, want histogram count %d", hist.name, v, hist.count)
		}
	}
	// After CHECKPOINT the delta gauges drop back to zero.
	for _, zero := range []string{"delta_rows", "delta_tombstones", "delta_device_bytes"} {
		v, ok := snap.Get(zero)
		if !ok || v.Value != 0 {
			t.Errorf("%s = %+v, want 0 after checkpoint", zero, v)
		}
	}

	// Session registries attribute only their own traffic.
	sess, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Query(q); err != nil {
		t.Fatal(err)
	}
	sSnap := sess.MetricsSnapshot()
	if v, ok := sSnap.Get("queries_total"); !ok || v.Value != 1 {
		t.Fatalf("session queries_total = %+v, want 1", v)
	}
	if v, ok := db.MetricsSnapshot().Get("queries_total"); !ok || v.Value != 5 {
		t.Fatalf("db queries_total = %+v, want 5", v)
	}
}

// TestSlowQueryThreshold checks the built-in slow-query accounting: with
// a zero-distance threshold every query is slow; the counter and the
// structured log line both fire.
func TestSlowQueryThreshold(t *testing.T) {
	var buf strings.Builder
	lg := slog.New(slog.NewTextHandler(&buf, nil))
	db, _, _ := loadTiny(t, WithSlowQuery(time.Nanosecond, lg))
	defer db.Close()

	const q = "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	if v, ok := db.MetricsSnapshot().Get("slow_queries_total"); !ok || v.Value != 1 {
		t.Fatalf("slow_queries_total = %+v, want 1", v)
	}
	if out := buf.String(); !strings.Contains(out, "ghostdb slow query") || !strings.Contains(out, "Sclerosis") {
		t.Fatalf("slow-query log missing expected fields:\n%s", out)
	}
}
