package core

// This file is EXPLAIN / EXPLAIN ANALYZE: the SQL-level window into the
// optimizer and the runtime. EXPLAIN renders the chosen plan with the
// cost model's cardinality estimates; EXPLAIN ANALYZE additionally runs
// the statement and lines up per-operator estimated vs actual tuple
// counts with wall-clock and simulated timings — the estimated-vs-actual
// feedback loop a cost-based optimizer consumes.

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// isExplain reports whether sqlText's first token is EXPLAIN, without
// parsing: Session.Query and DB.Query call it on every statement, so it
// must cost nothing for the common non-EXPLAIN case.
func isExplain(s string) bool {
	i := 0
	for i < len(s) && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' || s[i] == '\r') {
		i++
	}
	const kw = "explain"
	if len(s)-i < len(kw) {
		return false
	}
	for j := 0; j < len(kw); j++ {
		if s[i+j]|0x20 != kw[j] {
			return false
		}
	}
	if i+len(kw) < len(s) {
		c := s[i+len(kw)]
		if c == '_' || (c >= '0' && c <= '9') || (c|0x20 >= 'a' && c|0x20 <= 'z') {
			return false
		}
	}
	return true
}

// OpAnalysis is one operator row of an EXPLAIN ANALYZE: the executor's
// measured counters next to the cost model's cardinality estimate.
type OpAnalysis struct {
	Name      string
	Detail    string
	EstRows   int64 // estimated output cardinality; -1 when the model has none
	TuplesIn  int64
	TuplesOut int64
	RAMBytes  int64
	SimTime   time.Duration // simulated device time in the operator's phase
}

// Analysis is the structured product of EXPLAIN [ANALYZE]: the chosen
// plan, the cost model's estimates, and — for ANALYZE — the executed
// result with per-operator actuals.
type Analysis struct {
	SQL     string // canonical text of the explained SELECT
	Analyze bool

	Spec         plan.Spec          // the plan that was (or would be) executed
	PlanText     string             // DB.Explain's rendering of the plan
	Cards        plan.CardEstimates // the optimizer's cardinality model
	EstimatedSim time.Duration      // the cost model's predicted device time

	// Set only when Analyze: the executed result, its wall-clock
	// latency (including device-gate wait), and the per-operator rows.
	Result *Result
	Wall   time.Duration
	Ops    []OpAnalysis

	// Shards carries the per-device actuals of a scatter-gather ANALYZE
	// (sharded DBs only; Ops is nil then — operators are per-device).
	Shards []ShardAnalysis
}

// ShardAnalysis is one device shard's slice of an EXPLAIN ANALYZE: the
// shard's simulated time and its operator actuals lined up against the
// DB-wide estimates (estimates are per-device, computed over shard 0's
// statistics; each shard holds ~1/n of the root, so actuals on a
// balanced split land near the estimate).
type ShardAnalysis struct {
	Shard   int
	SimTime time.Duration
	Ops     []OpAnalysis
}

// ExplainAnalyze compiles sqlText (a SELECT, or an EXPLAIN [ANALYZE]
// statement whose inner SELECT is used), executes it, and returns the
// plan with per-operator estimated vs actual cardinalities and timings.
// The query must not contain '?' placeholders.
func (db *DB) ExplainAnalyze(sqlText string, opts ...QueryOption) (*Analysis, error) {
	sel, err := innerSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return db.analyzeSelect(sel, true, opts...)
}

// ExplainOnly compiles sqlText like ExplainAnalyze but renders the plan
// and estimates without executing the query.
func (db *DB) ExplainOnly(sqlText string, opts ...QueryOption) (*Analysis, error) {
	sel, err := innerSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return db.analyzeSelect(sel, false, opts...)
}

// innerSelect extracts the SELECT from plain or EXPLAIN-prefixed text.
func innerSelect(sqlText string) (*sql.Select, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	switch s := stmt.(type) {
	case *sql.Select:
		return s, nil
	case *sql.Explain:
		return s.Stmt, nil
	default:
		return nil, fmt.Errorf("core: EXPLAIN supports SELECT statements only, got %T", stmt)
	}
}

// explainQuery answers a SQL-level EXPLAIN [ANALYZE] statement with a
// one-column result ("plan"), one text line per row, so the rendering
// flows through Session.Query and the database/sql driver unchanged.
func (db *DB) explainQuery(sqlText string, opts ...QueryOption) (*Result, error) {
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	ex, ok := stmt.(*sql.Explain)
	if !ok {
		return nil, fmt.Errorf("core: expected an EXPLAIN statement, got %T", stmt)
	}
	a, err := db.analyzeSelect(ex.Stmt, ex.Analyze, opts...)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimRight(a.Text(), "\n"), "\n")
	res := &Result{Columns: []string{"plan"}, Query: nil}
	res.Rows = make([][]value.Value, len(lines))
	for i, ln := range lines {
		res.Rows[i] = []value.Value{value.NewString(ln)}
	}
	if a.Result != nil {
		res.Report = a.Result.Report
		res.Spec = a.Result.Spec
	}
	return res, nil
}

// analyzeSelect is the shared EXPLAIN [ANALYZE] pipeline.
func (db *DB) analyzeSelect(sel *sql.Select, execute bool, opts ...QueryOption) (*Analysis, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	canonical := sel.String()
	cq, _, err := db.compileCached(canonical)
	if err != nil {
		return nil, err
	}
	if cq.shape.NumParams > 0 {
		return nil, fmt.Errorf("core: cannot EXPLAIN a query with %d unbound parameters", cq.shape.NumParams)
	}
	bound := cq.shape
	if db.shards != nil {
		return db.analyzeSharded(cq, bound, execute, &cfg, opts...)
	}

	// Choose the plan exactly the way Run would: a forced spec wins,
	// then the shape's cached choice, then the optimizer.
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	visSel, err := db.visSelections(bound)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	counts, err := db.predCounts(bound, visSel)
	if err != nil {
		db.mu.Unlock()
		return nil, err
	}
	in := db.costInputs(counts)
	var spec plan.Spec
	switch {
	case cfg.spec != nil:
		spec = *cfg.spec
		if err := spec.Validate(bound, db.hasIndexLocked); err != nil {
			db.mu.Unlock()
			return nil, err
		}
	case cq.chosen != nil:
		spec = *cq.chosen
	default:
		best, bestCost := cq.specs[0], plan.Estimate(bound, cq.specs[0], in)
		for _, s := range cq.specs[1:] {
			if c := plan.Estimate(bound, s, in); c < bestCost {
				best, bestCost = s, c
			}
		}
		spec = best
		chosen := best.Clone()
		cq.chosen = &chosen
	}
	db.mu.Unlock()

	a := &Analysis{
		SQL:          canonical,
		Analyze:      execute,
		Spec:         spec,
		Cards:        plan.EstimateCards(bound, spec, in),
		EstimatedSim: plan.Estimate(bound, spec, in),
	}
	a.PlanText = db.Explain(bound, spec)

	if !execute {
		return a, nil
	}
	start := time.Now()
	res, err := db.QueryWithPlan(bound, spec, opts...)
	if err != nil {
		return nil, err
	}
	a.Wall = time.Since(start)
	a.Result = res
	a.Ops = analyzeOps(bound, spec, a.Cards, res.Report)
	if s := cfg.session; s != nil {
		s.record(res.Report)
	}
	return a, nil
}

// analyzeSharded is the scatter-gather EXPLAIN [ANALYZE] pipeline. The
// coordinator's own stores are empty, so plan statistics come from
// shard 0 (full dimension replicas, ~1/n of the root): the estimates
// are per-device, the ANALYZE actuals per-shard.
func (db *DB) analyzeSharded(cq *CompiledQuery, bound *plan.Query, execute bool, cfg *queryConfig, opts ...QueryOption) (*Analysis, error) {
	db.mu.Lock()
	closed := db.closed
	db.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	c0 := db.shards.children[0]

	c0.mu.Lock()
	visSel, err := c0.visSelections(bound)
	if err != nil {
		c0.mu.Unlock()
		return nil, err
	}
	counts, err := c0.predCounts(bound, visSel)
	if err != nil {
		c0.mu.Unlock()
		return nil, err
	}
	in := c0.costInputs(counts)
	var spec plan.Spec
	switch {
	case cfg.spec != nil:
		spec = *cfg.spec
		if err := spec.Validate(bound, c0.hasIndexLocked); err != nil {
			c0.mu.Unlock()
			return nil, err
		}
	case cq.chosen != nil:
		spec = *cq.chosen
	default:
		best, bestCost := cq.specs[0], plan.Estimate(bound, cq.specs[0], in)
		for _, s := range cq.specs[1:] {
			if c := plan.Estimate(bound, s, in); c < bestCost {
				best, bestCost = s, c
			}
		}
		spec = best
		chosen := best.Clone()
		cq.chosen = &chosen
	}
	c0.mu.Unlock()

	a := &Analysis{
		SQL:          cq.shape.SQL,
		Analyze:      execute,
		Spec:         spec,
		Cards:        plan.EstimateCards(bound, spec, in),
		EstimatedSim: plan.Estimate(bound, spec, in),
	}
	a.PlanText = c0.Explain(bound, spec)

	if !execute {
		return a, nil
	}
	start := time.Now()
	res, err := db.QueryWithPlan(bound, spec, opts...)
	if err != nil {
		return nil, err
	}
	a.Wall = time.Since(start)
	a.Result = res
	for s, rep := range res.ShardReports {
		if rep == nil {
			continue // dimension-rooted query: only the routed shard ran
		}
		a.Shards = append(a.Shards, ShardAnalysis{
			Shard:   s,
			SimTime: rep.TotalTime,
			Ops:     analyzeOps(bound, spec, a.Cards, rep),
		})
	}
	if s := cfg.session; s != nil {
		s.record(res.Report)
	}
	return a, nil
}

// analyzeOps lines the report's measured operators up with the cost
// model's cardinality estimates. Operators the model does not estimate
// carry EstRows = -1.
func analyzeOps(q *plan.Query, spec plan.Spec, cards plan.CardEstimates, rep *stats.Report) []OpAnalysis {
	// Own-level estimates per table for the shipped/bloom-hashed ID
	// lists: visible predicates on one table combine multiplicatively.
	shipEst := map[string]int64{}  // StratVisPre tables
	bloomEst := map[string]int64{} // StratVisPost tables
	tableEst := func(dst map[string]int64, i int) {
		t := q.Preds[i].Col.Table
		if cur, ok := dst[t]; !ok || int64(cards.PredCount[i]) < cur {
			dst[t] = int64(cards.PredCount[i])
		}
	}
	// Root-level estimate per predicate label for index contributions.
	idxEst := map[string]int64{}
	for i, st := range spec.Strategies {
		switch st {
		case plan.StratVisPre:
			tableEst(shipEst, i)
		case plan.StratVisPost:
			tableEst(bloomEst, i)
		case plan.StratHidIndex, plan.StratVisDevice:
			idxEst[q.PredLabel(i)] = int64(cards.PredRootCount[i])
		}
	}

	out := make([]OpAnalysis, 0, len(rep.Ops))
	for _, op := range rep.Ops {
		oa := OpAnalysis{
			Name:      op.Name,
			Detail:    op.Detail,
			EstRows:   -1,
			TuplesIn:  op.TuplesIn,
			TuplesOut: op.TuplesOut,
			RAMBytes:  op.RAMBytes,
			SimTime:   op.Time,
		}
		switch op.Name {
		case "ClimbingIndex":
			if est, ok := idxEst[op.Detail]; ok {
				oa.EstRows = est
			}
		case "ShipIDList":
			if est, ok := shipEst[op.Detail]; ok {
				oa.EstRows = est
			}
		case "BloomBuild":
			if est, ok := bloomEst[op.Detail]; ok {
				oa.EstRows = est
			}
		case "AccessSKT":
			oa.EstRows = int64(cards.Candidates)
		case "Filter", "Project":
			oa.EstRows = int64(cards.Survivors)
		case "Store":
			if op.Detail == "materialize candidates" {
				oa.EstRows = int64(cards.Survivors)
			}
		}
		out = append(out, oa)
	}
	return out
}

// Text renders the analysis the way the demo GUI renders its popups:
// the plan section first, then (for ANALYZE) the estimated-vs-actual
// operator table and the run summary.
func (a *Analysis) Text() string {
	var b strings.Builder
	if a.Analyze {
		b.WriteString("EXPLAIN ANALYZE\n")
	} else {
		b.WriteString("EXPLAIN\n")
	}
	b.WriteString(strings.TrimRight(a.PlanText, "\n"))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "estimated: %d candidates, %d survivors, %s simulated\n",
		a.Cards.Candidates, a.Cards.Survivors, stats.FormatDuration(a.EstimatedSim))
	if !a.Analyze {
		return b.String()
	}
	opTable := func(ops []OpAnalysis) {
		fmt.Fprintf(&b, "%-28s %10s %10s %10s %9s %12s\n",
			"operator", "est", "in", "out", "ram", "sim")
		for _, op := range ops {
			name := op.Name
			if op.Detail != "" {
				name += "(" + op.Detail + ")"
			}
			est := "-"
			if op.EstRows >= 0 {
				est = fmt.Sprintf("%d", op.EstRows)
			}
			fmt.Fprintf(&b, "%-28s %10s %10d %10d %9s %12s\n",
				name, est, op.TuplesIn, op.TuplesOut,
				stats.FormatBytes(op.RAMBytes), stats.FormatDuration(op.SimTime))
		}
	}
	if len(a.Shards) > 0 {
		for _, sh := range a.Shards {
			fmt.Fprintf(&b, "shard %d: %s simulated\n", sh.Shard, stats.FormatDuration(sh.SimTime))
			opTable(sh.Ops)
		}
	} else {
		opTable(a.Ops)
	}
	rep := a.Result.Report
	fmt.Fprintf(&b, "actual: %d rows in %s simulated, %s wall (estimated %s simulated)\n",
		rep.ResultRows, stats.FormatDuration(rep.TotalTime),
		stats.FormatDuration(a.Wall), stats.FormatDuration(a.EstimatedSim))
	return b.String()
}
