package core

// Live DML after the bulk load. The flash constraint keeps the base
// column segments write-once, so INSERT/UPDATE/DELETE after Build land
// in a per-table RAM delta (internal/delta): inserted and updated row
// images plus a tombstone set, charged against the device RAM arena for
// their hidden share. Queries subtract the shadowed identifiers from the
// base pipeline (the climbing indexes, Bloom filters and SKTs answer for
// the base segments only) and re-evaluate them — plus the inserted rows
// — directly against the effective state. CHECKPOINT merges the delta
// into fresh flash segments, renumbering the survivors densely, rebuilds
// the index structures, pays the simulated erase/program cost, and
// releases the delta's RAM grant.
//
// Deletion cascades virtually over the tree schema: a row whose
// foreign-key chain passes through a tombstoned ancestor is dead, and
// CHECKPOINT materializes the cascade by dropping it.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
	"github.com/ghostdb/ghostdb/internal/visible"
)

// ErrUnboundDML is returned when a DML statement carrying '?'
// placeholders is executed without going through CompileDML/Exec.
var ErrUnboundDML = errors.New("core: DML statement carries unbound '?' placeholders; use a prepared statement")

// Exec parses and executes a script of statements: CREATE TABLE and
// INSERT (staged before Build, live after), DELETE, UPDATE and
// CHECKPOINT. The first DML statement finalizes a pending bulk load. It
// returns the total number of rows affected.
func (db *DB) Exec(sqlText string) (int64, error) {
	stmts, err := sql.ParseScript(sqlText)
	if err != nil {
		return 0, err
	}
	return db.ExecStatements(stmts)
}

// ExecStatements executes already-parsed statements (see Exec). INSERT
// rows must be fully bound; bind '?' placeholders first.
func (db *DB) ExecStatements(stmts []sql.Statement) (int64, error) {
	return db.ExecStatementsContext(context.Background(), stmts)
}

// ExecStatementsContext is ExecStatements under a context: CHECKPOINT —
// explicit or delta-limit-triggered — checks ctx at table boundaries
// during its read phase and aborts cleanly (delta intact, database
// untouched) when the context is done. The commit phase, once entered,
// always runs to completion.
func (db *DB) ExecStatementsContext(ctx context.Context, stmts []sql.Statement) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	var affected int64
	var dmlStmts, dmlRows int64
	// Fold the DML counters and refresh the delta gauges on every exit
	// path; runs before the gate is released (defers are LIFO).
	defer func() {
		if m := db.metrics; m != nil && dmlStmts > 0 {
			m.dmlStatements.Add(dmlStmts)
			m.rowsAffected.Add(dmlRows)
			m.noteDelta(db)
		}
	}()
	for _, s := range stmts {
		switch s := s.(type) {
		case *sql.CreateTable:
			if err := db.applyCreate(s); err != nil {
				return affected, err
			}
		case *sql.Insert:
			if err := db.insertLocked(s); err != nil {
				return affected, err
			}
			affected += int64(len(s.Rows))
			dmlStmts++
			dmlRows += int64(len(s.Rows))
			if err := db.maybeAutoCheckpoint(ctx); err != nil {
				return affected, err
			}
		case *sql.Delete, *sql.Update:
			if err := db.ensureBuiltLocked(); err != nil {
				return affected, err
			}
			d, err := plan.BindDML(db.sch, s)
			if err != nil {
				return affected, err
			}
			if d.NumParams > 0 {
				return affected, ErrUnboundDML
			}
			n, err := db.execDMLLocked(d)
			affected += n
			dmlStmts++
			dmlRows += n
			if err != nil {
				return affected, err
			}
			if err := db.maybeAutoCheckpoint(ctx); err != nil {
				return affected, err
			}
		case *sql.Checkpoint:
			if err := db.ensureBuiltLocked(); err != nil {
				return affected, err
			}
			n, err := db.checkpointAnyLocked(ctx)
			affected += n
			if err != nil {
				return affected, err
			}
		default:
			return affected, fmt.Errorf("core: cannot execute %T", s)
		}
	}
	return affected, nil
}

// ensureBuiltLocked finalizes a pending bulk load under the gate.
func (db *DB) ensureBuiltLocked() error {
	if db.loaded {
		return nil
	}
	return db.buildStaged()
}

// maybeAutoCheckpoint runs a CHECKPOINT when the deltalimit knob is set
// and the delta has grown past it. On a sharded DB the trigger counts
// the logical delta across the shard set (the children run with the
// knob off; the coordinator decides when the merge happens).
func (db *DB) maybeAutoCheckpoint(ctx context.Context) error {
	if !db.loaded || db.opts.DeltaLimit <= 0 {
		return nil
	}
	entries := 0
	if db.shards != nil {
		entries = db.shards.logicalEntries(db)
	} else {
		entries = db.delta.Entries()
	}
	if entries < db.opts.DeltaLimit {
		return nil
	}
	_, err := db.checkpointAnyLocked(ctx)
	return err
}

// checkpointAnyLocked dispatches CHECKPOINT to the engine at hand: the
// parallel per-shard merge on a sharded DB, the classic single-device
// merge otherwise.
func (db *DB) checkpointAnyLocked(ctx context.Context) (int64, error) {
	if !db.loaded {
		return 0, fmt.Errorf("core: CHECKPOINT before Build")
	}
	if err := db.fatalError(); err != nil {
		return 0, err
	}
	if db.shards != nil {
		return db.shards.checkpoint(db, ctx)
	}
	n, _, err := db.checkpointLocked(ctx)
	return n, err
}

// Checkpoint merges the delta into fresh flash segments (see the package
// comment) and returns the number of delta entries absorbed.
func (db *DB) Checkpoint() (int64, error) {
	return db.CheckpointContext(context.Background())
}

// CheckpointContext is Checkpoint under a context: the read phase
// checks ctx at table boundaries and aborts cleanly (delta intact) when
// the context is done; the commit phase, once entered, runs to
// completion.
func (db *DB) CheckpointContext(ctx context.Context) (int64, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	if err := db.ensureBuiltLocked(); err != nil {
		return 0, err
	}
	return db.checkpointAnyLocked(ctx)
}

// CompiledDML is the cacheable compiled form of a DELETE or UPDATE
// shape, the DML analogue of CompiledQuery: parsed and bound once,
// bind-many/run-many afterwards, shared through the plan cache.
type CompiledDML struct {
	db    *DB
	shape *plan.DML
}

// SQL returns the canonical statement text (placeholders render as '?').
func (cd *CompiledDML) SQL() string { return cd.shape.SQL }

// NumParams reports how many '?' placeholders the shape carries.
func (cd *CompiledDML) NumParams() int { return cd.shape.NumParams }

// CompileDML parses and binds a DELETE or UPDATE without touching the
// plan cache. The bulk load must be finalized first.
func (db *DB) CompileDML(sqlText string) (*CompiledDML, error) {
	db.mu.Lock()
	closed, loaded := db.closed, db.loaded
	db.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !loaded {
		return nil, fmt.Errorf("core: DML before Build")
	}
	stmt, err := sql.Parse(sqlText)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sql.Delete, *sql.Update:
	default:
		return nil, fmt.Errorf("core: CompileDML expects DELETE or UPDATE, got %T", stmt)
	}
	d, err := plan.BindDML(db.sch, stmt)
	if err != nil {
		return nil, err
	}
	return &CompiledDML{db: db, shape: d}, nil
}

// compileDMLCached returns the compiled DML for sqlText, consulting the
// shared plan cache first.
func (db *DB) compileDMLCached(sqlText string) (*CompiledDML, bool, error) {
	key := "dml\x00" + normalizeSQL(sqlText)
	if v, ok := db.planCache.get(key); ok {
		if cd, ok := v.(*CompiledDML); ok {
			return cd, true, nil
		}
	}
	cd, err := db.CompileDML(sqlText)
	if err != nil {
		return nil, false, err
	}
	db.planCache.put(key, cd)
	return cd, false, nil
}

// Exec binds the compiled shape to params (ordinal order, one per '?')
// and executes it, returning the number of rows affected.
func (cd *CompiledDML) Exec(params []value.Value) (int64, error) {
	bound, err := cd.shape.BindParams(params)
	if err != nil {
		return 0, err
	}
	db := cd.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	n, err := db.execDMLLocked(bound)
	if m := db.metrics; m != nil {
		m.dmlStatements.Inc()
		m.rowsAffected.Add(n)
		m.noteDelta(db)
	}
	if err != nil {
		return n, err
	}
	return n, db.maybeAutoCheckpoint(context.Background())
}

// ---------------------------------------------------------------------------
// Effective state: base segments overlaid with the RAM delta.

// liveness memoizes chain-liveness per table/ID for one operation. A row
// is live iff it is not tombstoned and every row its foreign-key chain
// references is live (the virtual delete cascade). Each fresh evaluation
// charges one tombstone probe to the device CPU.
type liveness struct {
	db   *DB
	memo map[string]map[uint32]bool
}

func (db *DB) newLiveness() *liveness {
	return &liveness{db: db, memo: map[string]map[uint32]bool{}}
}

func (l *liveness) live(table string, id uint32) bool {
	m := l.memo[table]
	if m == nil {
		m = map[uint32]bool{}
		l.memo[table] = m
	}
	if v, ok := m[id]; ok {
		return v
	}
	l.db.dev.CPU.Charge(sim.CyclesTombstone)
	if em := l.db.metrics; em != nil {
		em.tombstoneProbes.Inc()
	}
	v := l.computeLive(table, id)
	m[id] = v
	return v
}

func (l *liveness) computeLive(table string, id uint32) bool {
	db := l.db
	t, ok := db.sch.Table(table)
	if !ok || id == 0 {
		return false
	}
	d, hasDelta := db.delta.Get(t.Name)
	if hasDelta && d.Tombstoned(id) {
		return false
	}
	if int(id) > db.rowCounts[t.Name] {
		// Beyond the base segment: the row must be delta-resident.
		if !hasDelta {
			return false
		}
		if _, ok := d.Row(id); !ok {
			return false
		}
	}
	for _, fk := range t.ForeignKeys() {
		cid, err := db.effectiveFK(t, t.ColumnIndex(fk.Name), id)
		if err != nil || !l.live(fk.RefTable, cid) {
			return false
		}
	}
	return true
}

// effectiveFK reads the current foreign-key value of row id: the delta
// image when the row is delta-resident, the retained base edge array
// otherwise.
func (db *DB) effectiveFK(t *schema.Table, colIdx int, id uint32) (uint32, error) {
	if d, ok := db.delta.Get(t.Name); ok {
		if row, ok := d.Row(id); ok {
			return uint32(row[colIdx].Int()), nil
		}
	}
	if int(id) > db.rowCounts[t.Name] {
		return 0, fmt.Errorf("core: %s id %d has no row", t.Name, id)
	}
	ids := db.fkArrays[fkKey(t.Name, t.Columns[colIdx].Name)]
	return ids[id-1], nil
}

// effectiveValue reads the current value of column colIdx of row id.
// Delta images are served from device RAM; base hidden values from the
// flash store (charged through the page cache); base visible values and
// primary keys from the untrusted side for free.
func (db *DB) effectiveValue(t *schema.Table, colIdx int, id uint32) (value.Value, error) {
	if d, ok := db.delta.Get(t.Name); ok {
		if row, ok := d.Row(id); ok {
			db.dev.CPU.Charge(sim.CyclesDecode)
			return row[colIdx], nil
		}
	}
	if int(id) > db.rowCounts[t.Name] {
		return value.Value{}, fmt.Errorf("core: %s id %d has no row", t.Name, id)
	}
	c := t.Columns[colIdx]
	if c.PrimaryKey {
		return value.NewInt(int64(id)), nil
	}
	if c.Hidden {
		td, ok := db.hid.Table(t.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("core: no hidden table %s", t.Name)
		}
		col, ok := td.Column(c.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("core: no hidden column %s.%s", t.Name, c.Name)
		}
		return col.Value(int(id) - 1)
	}
	vt, ok := db.vis.Table(t.Name)
	if !ok {
		return value.Value{}, fmt.Errorf("core: no visible table %s", t.Name)
	}
	return vt.Value(c.Name, id)
}

// effectiveDescend walks from a row of `from` down the effective
// foreign-key chain to its row in target (which `from` transitively
// references).
func (db *DB) effectiveDescend(from *schema.Table, fromID uint32, target string) (uint32, error) {
	if from.Name == target {
		return fromID, nil
	}
	path := db.sch.PathToRoot(target)
	start := -1
	for i, t := range path {
		if t.Name == from.Name {
			start = i
			break
		}
	}
	if start <= 0 {
		return 0, fmt.Errorf("core: %s is not reachable from %s", target, from.Name)
	}
	id := fromID
	for i := start; i > 0; i-- {
		parent := path[i]
		child := path[i-1]
		_, fk := db.sch.Parent(child.Name)
		db.dev.CPU.Charge(sim.CyclesCompare)
		next, err := db.effectiveFK(parent, parent.ColumnIndex(fk.Name), id)
		if err != nil {
			return 0, err
		}
		id = next
	}
	return id, nil
}

// effectiveRow materializes the full current image of row id (schema
// column order).
func (db *DB) effectiveRow(t *schema.Table, id uint32) ([]value.Value, error) {
	if d, ok := db.delta.Get(t.Name); ok {
		if row, ok := d.Row(id); ok {
			db.dev.CPU.Charge(sim.CyclesDeltaRow)
			out := make([]value.Value, len(row))
			copy(out, row)
			return out, nil
		}
	}
	out := make([]value.Value, len(t.Columns))
	for i := range t.Columns {
		v, err := db.effectiveValue(t, i, id)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// INSERT after Build.

// deltaInsertLocked validates and applies a post-build INSERT: dense
// primary keys continuing the sequence, literals coerced to column
// kinds, foreign keys referencing live rows. The statement ships over
// the bus to the device, which stores the hidden share in its RAM arena;
// the whole statement applies atomically or not at all.
func (db *DB) deltaInsertLocked(ins *sql.Insert) error {
	t, ok := db.sch.Table(ins.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %s", ins.Table)
	}
	dt := db.delta.Ensure(t, db.rowCounts[t.Name])
	lv := db.newLiveness()
	rows := make([][]value.Value, len(ins.Rows))
	busBytes := 0
	for ri, row := range ins.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("core: %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
		}
		out := make([]value.Value, len(row))
		for ci, v := range row {
			if v.IsParam() {
				return fmt.Errorf("core: INSERT into %s carries an unbound '?' placeholder; bind arguments first", t.Name)
			}
			c := t.Columns[ci]
			cv, err := value.Coerce(v, c.Type.Kind)
			if err != nil {
				return fmt.Errorf("core: %s.%s row %d: %w", t.Name, c.Name, ri+1, err)
			}
			out[ci] = cv
			busBytes += cv.EncodedSize()
		}
		want := int64(dt.NextID()) + int64(ri)
		pkVal := out[t.PrimaryKeyIndex()]
		if pkVal.Kind() != value.Int || pkVal.Int() != want {
			return fmt.Errorf("core: %s primary key must be dense: row %d needs key %d, got %s",
				t.Name, ri+1, want, pkVal)
		}
		for _, fk := range t.ForeignKeys() {
			ref := out[t.ColumnIndex(fk.Name)]
			if ref.Kind() != value.Int || !lv.live(fk.RefTable, uint32(ref.Int())) {
				return fmt.Errorf("core: %s row %d: foreign key %s = %s references no live %s row",
					t.Name, ri+1, fk.Name, ref, fk.RefTable)
			}
		}
		rows[ri] = out
	}
	// The statement travels terminal -> device; the hidden payload is
	// never echoed to the server.
	if err := db.net.Send(trace.Terminal, trace.Device, trace.KindDML, busBytes, "INSERT "+t.Name, nil); err != nil {
		db.noteDeviceErr(err)
		return err
	}
	if _, err := dt.InsertAll(rows); err != nil {
		return err
	}
	for _, row := range rows {
		for ci, c := range t.Columns {
			if c.Hidden && c.Type.Kind == value.String {
				db.hiddenVals.Add(row[ci])
			}
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// DELETE / UPDATE.

// execDMLLocked runs one fully bound DELETE or UPDATE under the gate and
// returns the number of live rows affected.
func (db *DB) execDMLLocked(d *plan.DML) (int64, error) {
	if !db.loaded {
		return 0, fmt.Errorf("core: DML before Build")
	}
	if err := db.fatalError(); err != nil {
		return 0, err
	}
	if d.NumParams > 0 {
		return 0, ErrUnboundDML
	}
	if db.shards != nil {
		return db.shards.execDML(db, d)
	}
	if err := db.net.Send(trace.Terminal, trace.Device, trace.KindDML, len(d.SQL), d.Op.String()+" "+d.Table.Name, nil); err != nil {
		db.noteDeviceErr(err)
		return 0, err
	}
	ids, err := db.matchDMLLocked(d)
	if err != nil {
		db.noteDeviceErr(err)
		return 0, err
	}
	dt := db.delta.Ensure(d.Table, db.rowCounts[d.Table.Name])
	switch d.Op {
	case plan.OpDelete:
		for _, id := range ids {
			if err := dt.Delete(id); err != nil {
				return 0, err
			}
		}
	case plan.OpUpdate:
		lv := db.newLiveness()
		for _, id := range ids {
			row, err := db.effectiveRow(d.Table, id)
			if err != nil {
				return 0, err
			}
			for _, a := range d.Sets {
				c := d.Table.Columns[a.ColIdx]
				if c.IsForeignKey() {
					if a.Val.Kind() != value.Int || !lv.live(c.RefTable, uint32(a.Val.Int())) {
						return 0, fmt.Errorf("core: UPDATE %s: foreign key %s = %s references no live %s row",
							d.Table.Name, c.Name, a.Val, c.RefTable)
					}
				}
				row[a.ColIdx] = a.Val
				if c.Hidden && c.Type.Kind == value.String {
					db.hiddenVals.Add(a.Val)
				}
			}
			if err := dt.Apply(id, row); err != nil {
				return 0, err
			}
		}
	}
	return int64(len(ids)), nil
}

// matchDMLLocked returns the sorted live identifiers matching the DML's
// predicates over the effective state: base candidates come from the
// climbing indexes (hidden predicates, exact posting lists) and the
// untrusted side's selections (visible predicates) minus the shadowed
// set; delta-resident images are scanned directly in RAM.
func (db *DB) matchDMLLocked(d *plan.DML) ([]uint32, error) {
	t := d.Table
	baseN := db.rowCounts[t.Name]
	dt, hasDelta := db.delta.Get(t.Name)
	lv := db.newLiveness()
	rep := &stats.Report{}

	// Base candidates: intersect the per-predicate exact ID lists.
	var base []uint32
	if len(d.Preds) == 0 {
		base = make([]uint32, baseN)
		for i := range base {
			base[i] = uint32(i + 1)
		}
	} else {
		for i, p := range d.Preds {
			var ids []uint32
			if p.Hidden() {
				ix, ok := db.indexLocked(p.Col.Table, p.Col.Column)
				if !ok {
					return nil, fmt.Errorf("core: no index on hidden column %s", p.Col)
				}
				op := rep.NewOp("ClimbingIndex", p.String())
				var sources []exec.IDSource
				err := forEachEntry(ix, p.P, func(e climbing.Entry) error {
					if e.Lists[0].Count > 0 {
						sources = append(sources, exec.ClimbSource{Env: db.env, Ix: ix, Ref: e.Lists[0]})
					}
					return nil
				})
				if err != nil {
					return nil, err
				}
				it, err := db.env.Union(sources, db.env.Fanin(0.5), op)
				if err != nil {
					return nil, err
				}
				if ids, err = exec.Collect(it); err != nil {
					return nil, err
				}
			} else {
				vt, ok := db.vis.Table(p.Col.Table)
				if !ok {
					return nil, fmt.Errorf("core: no visible table %s", p.Col.Table)
				}
				var err error
				if ids, err = vt.Select(p.Col.Column, p.P); err != nil {
					return nil, err
				}
			}
			if i == 0 {
				base = ids
			} else {
				base = visible.IntersectSorted(base, ids)
			}
			if len(base) == 0 {
				break
			}
		}
	}

	var out []uint32
	for _, id := range base {
		if hasDelta && dt.Shadowed(id) {
			continue // re-evaluated from the delta image below
		}
		if !lv.live(t.Name, id) {
			continue
		}
		out = append(out, id)
	}

	// Delta-resident images: direct RAM scan.
	if hasDelta {
		for _, id := range dt.DeltaIDs() {
			if !lv.live(t.Name, id) {
				continue
			}
			row, _ := dt.Row(id)
			db.dev.CPU.Charge(sim.CyclesDeltaRow)
			match := true
			for _, p := range d.Preds {
				db.dev.CPU.Charge(sim.CyclesPredicate)
				colIdx := t.ColumnIndex(p.Col.Column)
				ok, err := p.P.Eval(row[colIdx])
				if err != nil {
					return nil, err
				}
				if !ok {
					match = false
					break
				}
			}
			if match {
				out = append(out, id)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// ---------------------------------------------------------------------------
// CHECKPOINT.

// ckptPending is a prepared CHECKPOINT: the extracted post-merge column
// data and survivor lists, ready to commit into the inactive flash half.
// Between prepare and commit the database is fully intact — the delta
// still holds every mutation, so abandoning a pending checkpoint (on
// context cancellation, say) loses nothing.
type ckptPending struct {
	absorbed  int64
	oldIDs    map[string][]uint32
	cols      map[string][][]value.Value
	wallStart time.Time
	simStart  time.Duration
}

// checkpointLocked merges the delta into fresh flash segments: it
// extracts the chain-live rows of every table (reading base hidden
// values through the charged page cache and delta images from RAM),
// renumbers the survivors densely — materializing the virtual delete
// cascade — builds the column files, SKTs and climbing indexes into the
// inactive flash half at full program cost, flips the commit record,
// and releases the delta's RAM grants. It returns the number of delta
// entries absorbed and the root table's surviving old identifiers in
// ascending order (each survivor's new dense identifier is its rank in
// that list) — the sharded coordinator rebuilds its global mapping from
// them. A no-op checkpoint returns a nil survivor list.
func (db *DB) checkpointLocked(ctx context.Context) (int64, []uint32, error) {
	p, err := db.checkpointPrepareLocked(ctx)
	if err != nil || p == nil {
		return 0, nil, err
	}
	if err := db.checkpointCommitLocked(p); err != nil {
		return 0, nil, err
	}
	return p.absorbed, p.oldIDs[db.sch.Root().Name], nil
}

// checkpointPrepareLocked runs the read-only phase of a CHECKPOINT:
// liveness, renumbering, and extraction of the effective column data.
// It checks ctx at every table boundary; any error — cancellation
// included — returns with the database untouched and the delta intact.
// A clean delta returns (nil, nil).
func (db *DB) checkpointPrepareLocked(ctx context.Context) (*ckptPending, error) {
	if !db.loaded {
		return nil, fmt.Errorf("core: CHECKPOINT before Build")
	}
	absorbed := int64(db.delta.Entries())
	if absorbed == 0 {
		return nil, nil
	}
	p := &ckptPending{absorbed: absorbed, wallStart: time.Now(), simStart: db.clock.Now()}
	if err := db.net.Send(trace.Terminal, trace.Device, trace.KindDML, len("CHECKPOINT"), "CHECKPOINT", nil); err != nil {
		db.noteDeviceErr(err)
		return nil, err
	}
	lv := db.newLiveness()

	// Pass 1: survivors and their new dense identifiers, per table.
	oldIDs := map[string][]uint32{}
	renumber := map[string]map[uint32]uint32{}
	for _, t := range db.sch.Tables() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: CHECKPOINT canceled: %w", err)
		}
		maxID := uint32(db.rowCounts[t.Name])
		if d, ok := db.delta.Get(t.Name); ok {
			maxID = d.MaxID()
		}
		var ids []uint32
		remap := map[uint32]uint32{}
		for id := uint32(1); id <= maxID; id++ {
			if !lv.live(t.Name, id) {
				continue
			}
			ids = append(ids, id)
			remap[id] = uint32(len(ids))
		}
		oldIDs[t.Name] = ids
		renumber[t.Name] = remap
	}

	// Pass 2: extract the effective columns with foreign keys remapped,
	// before anything is torn down.
	cols := map[string][][]value.Value{}
	for _, t := range db.sch.Tables() {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: CHECKPOINT canceled: %w", err)
		}
		ids := oldIDs[t.Name]
		tcols := make([][]value.Value, len(t.Columns))
		for ci := range t.Columns {
			tcols[ci] = make([]value.Value, len(ids))
		}
		for newIdx, oldID := range ids {
			for ci, c := range t.Columns {
				switch {
				case c.PrimaryKey:
					tcols[ci][newIdx] = value.NewInt(int64(newIdx + 1))
				case c.IsForeignKey():
					oldChild, err := db.effectiveFK(t, ci, oldID)
					if err != nil {
						return nil, err
					}
					newChild, ok := renumber[db.mustTable(c.RefTable).Name][oldChild]
					if !ok {
						return nil, fmt.Errorf("core: checkpoint: %s.%s row %d dangles", t.Name, c.Name, oldID)
					}
					tcols[ci][newIdx] = value.NewInt(int64(newChild))
				default:
					v, err := db.effectiveValue(t, ci, oldID)
					if err != nil {
						db.noteDeviceErr(err)
						return nil, err
					}
					tcols[ci][newIdx] = v
				}
			}
		}
		cols[t.Name] = tcols
	}
	p.oldIDs = oldIDs
	p.cols = cols
	return p, nil
}

// checkpointCommitLocked makes a prepared checkpoint durable: it swaps
// to the inactive flash half (erasing only the version-before-last),
// rebuilds the column files and indexes there at full simulated cost,
// and then — as the last device operation — writes the new commit
// record. A crash at any point leaves exactly the previous committed
// version recoverable; an error mid-commit latches the DB fatal, since
// the in-RAM structures no longer match any committed flash state.
// Feeds the checkpoint metrics on every outcome.
func (db *DB) checkpointCommitLocked(p *ckptPending) error {
	defer func() {
		db.checkpointsRun.Add(1)
		if m := db.metrics; m != nil {
			m.checkpoints.Inc()
			m.checkpointWall.Observe(time.Since(p.wallStart).Nanoseconds())
			m.checkpointSim.Observe(int64(db.clock.Span(p.simStart)))
			m.noteDelta(db)
		}
	}()
	// Tear down the old device structures: drop the page cache grant,
	// swap to the spare half (erasing the version-before-last) and
	// release the delta RAM.
	db.hid.Release()
	if err := db.dev.SwapHalf(); err != nil {
		db.setFatal(err)
		return err
	}
	db.delta.ReleaseAll()

	// Rebuild at full simulated cost: every AppendRegion programs pages,
	// on top of the erase charges above. The clock is NOT rewound — this
	// is the price of making the delta durable.
	if err := db.loadState(p.cols); err != nil {
		db.setFatal(err)
		return err
	}
	db.version++
	db.stashCommitted(db.version, p.cols)
	if err := db.writeCommitRecord(); err != nil {
		// The new state is built but not committed: recovery would land
		// on the previous version, diverging from the live in-RAM state.
		db.setFatal(err)
		return err
	}
	return nil
}

// recordOnlyCommitLocked advances this device's committed version
// without rebuilding its data: the commit record is re-pointed at the
// current (unchanged) column extents. A sharded coordinator uses it on
// shards whose delta was empty during a global CHECKPOINT, keeping all
// shard versions in lockstep so recovery can pick one global cut.
func (db *DB) recordOnlyCommitLocked() error {
	db.version++
	if prev, ok := db.committedVis[db.version-1]; ok {
		db.committedVis[db.version] = prev
		if db.version >= 2 {
			delete(db.committedVis, db.version-2)
		}
	}
	if err := db.writeCommitRecord(); err != nil {
		db.setFatal(err)
		return err
	}
	return nil
}

// mustTable returns a frozen-schema table by name (checkpoint internals;
// the schema validated these references at load time).
func (db *DB) mustTable(name string) *schema.Table {
	t, _ := db.sch.Table(name)
	return t
}

// ---------------------------------------------------------------------------
// Query-path delta footprint.

// deltaFootprint computes, for a query rooted at q.Root, the base root
// identifiers whose referenced tree touches the delta (they must be
// subtracted from the base pipeline) and the sorted candidate root
// identifiers to re-evaluate against the effective state (the subtracted
// set plus the root's own delta-resident rows).
func (db *DB) deltaFootprint(q *plan.Query) (map[uint32]struct{}, []uint32) {
	if !db.delta.Dirty() {
		return nil, nil
	}
	root := q.Root

	// Tables the query root transitively references (the liveness and
	// value chain of a root row), including the root itself.
	var reach []*schema.Table
	var visit func(t *schema.Table)
	visit = func(t *schema.Table) {
		reach = append(reach, t)
		for _, fk := range t.ForeignKeys() {
			visit(db.mustTable(fk.RefTable))
		}
	}
	visit(root)

	dirty := map[uint32]struct{}{}
	for _, t := range reach {
		d, ok := db.delta.Get(t.Name)
		if !ok || !d.Dirty() {
			continue
		}
		ids := d.ShadowedBaseIDs()
		if len(ids) == 0 {
			continue
		}
		if t.Name == root.Name {
			for _, id := range ids {
				dirty[id] = struct{}{}
			}
			continue
		}
		// Propagate the shadowed base identifiers up the referencing
		// chain to the query root through the retained inverted edges.
		path := db.sch.PathToRoot(t.Name)
		cur := ids
		for j := 0; j+1 < len(path) && len(cur) > 0; j++ {
			child, parent := path[j], path[j+1]
			inv := db.inverted[invKey(parent.Name, child.Name)]
			next := map[uint32]struct{}{}
			for _, id := range cur {
				if int(id) <= len(inv) {
					for _, p := range inv[id-1] {
						next[p] = struct{}{}
					}
				}
			}
			cur = sortedIDs(next)
			if parent.Name == root.Name {
				break
			}
		}
		for _, id := range cur {
			dirty[id] = struct{}{}
		}
	}

	cands := map[uint32]struct{}{}
	for id := range dirty {
		cands[id] = struct{}{}
	}
	if d, ok := db.delta.Get(root.Name); ok {
		for _, id := range d.DeltaIDs() {
			cands[id] = struct{}{}
		}
	}
	if len(dirty) == 0 {
		dirty = nil
	}
	return dirty, sortedIDs(cands)
}

func sortedIDs(set map[uint32]struct{}) []uint32 {
	out := make([]uint32, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
