package core

import (
	"math/rand"
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/stats"
)

// loadPair builds two engines over the same dataset: the vectorized batch
// engine and the row-at-a-time reference engine (batch size 1), plus the
// shared query generator.
func loadPair(t *testing.T, opts ...Option) (batch, row *DB, gen *queryGen, load func(extra ...Option) *DB) {
	t.Helper()
	ds := datagen.Generate(datagen.Tiny())
	load = func(extra ...Option) *DB {
		db, err := Open(append(append([]Option{}, opts...), extra...)...)
		if err != nil {
			t.Fatal(err)
		}
		if err := db.LoadDataset(ds); err != nil {
			t.Fatal(err)
		}
		return db
	}
	batch = load()
	row = load(WithBatchSize(1))
	return batch, row, &queryGen{rng: rand.New(rand.NewSource(23)), ds: ds}, load
}

// diffReports returns a description of the first divergence between two
// execution reports, or "" when they are bit-identical in simulated time,
// tuple counts, flash traffic, bus traffic and RAM high-water.
func diffReports(a, b *stats.Report) string {
	if a.TotalTime != b.TotalTime {
		return "TotalTime " + a.TotalTime.String() + " vs " + b.TotalTime.String()
	}
	if a.RAMHigh != b.RAMHigh {
		return "RAMHigh differs"
	}
	if a.Flash != b.Flash {
		return "flash stats differ"
	}
	if a.BusBytes != b.BusBytes || a.BusMsgs != b.BusMsgs {
		return "bus traffic differs"
	}
	if a.ResultRows != b.ResultRows {
		return "result row count differs"
	}
	if len(a.Ops) != len(b.Ops) {
		return "operator count differs"
	}
	for i := range a.Ops {
		x, y := a.Ops[i], b.Ops[i]
		if x.Name != y.Name || x.Detail != y.Detail {
			return "op " + x.Name + "(" + x.Detail + ") vs " + y.Name + "(" + y.Detail + ")"
		}
		if x.TuplesIn != y.TuplesIn || x.TuplesOut != y.TuplesOut {
			return "op " + x.Name + "(" + x.Detail + ") tuple counts differ: " + x.String() + " vs " + y.String()
		}
		if x.Time != y.Time {
			return "op " + x.Name + "(" + x.Detail + ") time differs: " + x.String() + " vs " + y.String()
		}
		if x.RAMBytes != y.RAMBytes {
			return "op " + x.Name + "(" + x.Detail + ") RAM differs"
		}
	}
	return ""
}

// checkPlansEquivalent runs one query under every enumerated plan on
// both engines and requires identical rows and bit-identical reports.
func checkPlansEquivalent(t *testing.T, batch, row *DB, i int, sqlText string) {
	t.Helper()
	qb, err := batch.Prepare(sqlText)
	if err != nil {
		t.Fatalf("query %d %q: %v", i, sqlText, err)
	}
	qr, err := row.Prepare(sqlText)
	if err != nil {
		t.Fatalf("query %d %q (row): %v", i, sqlText, err)
	}
	specs := batch.Plans(qb)
	rowSpecs := row.Plans(qr)
	if len(specs) != len(rowSpecs) {
		t.Fatalf("query %d %q: %d plans vs %d", i, sqlText, len(specs), len(rowSpecs))
	}
	for s, spec := range specs {
		rb, err := batch.QueryWithPlan(qb, spec)
		if err != nil {
			t.Fatalf("query %d %q / %s: %v", i, sqlText, spec.Describe(qb), err)
		}
		rr, err := row.QueryWithPlan(qr, rowSpecs[s])
		if err != nil {
			t.Fatalf("query %d %q / %s (row): %v", i, sqlText, spec.Describe(qb), err)
		}
		if !sameRows(rb.Rows, rr.Rows) {
			t.Fatalf("query %d %q / %s: batch returned %d rows, row engine %d",
				i, sqlText, spec.Describe(qb), len(rb.Rows), len(rr.Rows))
		}
		if d := diffReports(rb.Report, rr.Report); d != "" {
			t.Fatalf("query %d %q / %s: engines diverge: %s\nbatch:\n%s\nrow:\n%s",
				i, sqlText, spec.Describe(qb), d, rb.Report, rr.Report)
		}
	}
}

// dmlScript is a deterministic live-DML sequence applied identically to
// both engines: inserts, a hidden-column update, deletes with virtual
// cascade. It leaves every table of the Figure 3 schema with a dirty
// delta so the equivalence corpus runs with delta-resident rows.
var dmlScript = []string{
	`INSERT INTO Doctor VALUES (3, 'Novak', 'Oncology', 75011, 'France')`,
	`UPDATE Visit SET Purpose = 'Checkup' WHERE Date > 2007-01-01`,
	`DELETE FROM Medicine WHERE Type = 'Vaccine'`,
	`DELETE FROM Patient WHERE Age > 60`,
	`UPDATE Prescription SET Quantity = 5 WHERE Quantity > 80`,
}

// applyDMLBoth runs one statement on both engines and requires identical
// affected-row counts.
func applyDMLBoth(t *testing.T, batch, row *DB, stmt string) {
	t.Helper()
	nb, err := batch.Exec(stmt)
	if err != nil {
		t.Fatalf("%q (batch): %v", stmt, err)
	}
	nr, err := row.Exec(stmt)
	if err != nil {
		t.Fatalf("%q (row): %v", stmt, err)
	}
	if nb != nr {
		t.Fatalf("%q: batch affected %d, row %d", stmt, nb, nr)
	}
}

// TestBatchRowEquivalence is the engine-invariance property: every random
// query, under every enumerated plan, must produce the same result set,
// the same per-operator tuple counts and the bit-identical simulated
// device time on the batch engine and on the row-at-a-time engine. The
// cost model is the paper's contribution — vectorization is only allowed
// to change host CPU time. The property must hold with a clean base, with
// delta-resident rows after live DML, and again after CHECKPOINT merges
// the delta to flash.
func TestBatchRowEquivalence(t *testing.T) {
	batch, row, gen, _ := loadPair(t)
	iterations := 40
	if testing.Short() {
		iterations = 10
	}
	aggIterations := 15
	if testing.Short() {
		aggIterations = 5
	}
	for i := 0; i < iterations+aggIterations; i++ {
		// The tail of the corpus exercises the post-operator dialect:
		// aggregation runs host-side after the pipeline, so the
		// bit-identical-cost property must hold there too.
		sqlText := gen.next()
		if i >= iterations {
			sqlText = gen.nextPostOp()
		}
		checkPlansEquivalent(t, batch, row, i, sqlText)
	}

	// Live DML: both engines mutate identically (the delta path is
	// granularity-independent by construction), then the whole corpus
	// property must hold with delta-resident rows...
	for _, stmt := range dmlScript {
		applyDMLBoth(t, batch, row, stmt)
	}
	dmlIterations := iterations/2 + aggIterations/2
	for i := 0; i < dmlIterations; i++ {
		sqlText := gen.next()
		if i%3 == 2 {
			sqlText = gen.nextPostOp()
		}
		checkPlansEquivalent(t, batch, row, 1000+i, sqlText)
	}

	// ...and again after CHECKPOINT merges the delta into fresh flash
	// segments on both engines.
	nb, err := batch.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	nr, err := row.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if nb == 0 || nb != nr {
		t.Fatalf("checkpoint absorbed %d (batch) vs %d (row)", nb, nr)
	}
	for i := 0; i < dmlIterations; i++ {
		sqlText := gen.next()
		if i%3 == 2 {
			sqlText = gen.nextPostOp()
		}
		checkPlansEquivalent(t, batch, row, 2000+i, sqlText)
	}
}

// TestBatchRowEquivalenceTinyRAM repeats the property on a 16KB device,
// forcing the spill-everything paths (multi-pass unions, scratch runs,
// tight-RAM sequential contribution integration) through both engines —
// plus a third engine at an odd batch granularity (7), checking that the
// invariance holds at every vectorization width, not just the default.
func TestBatchRowEquivalenceTinyRAM(t *testing.T) {
	prof := SmallProfileForTest()
	batch, row, gen, load := loadPair(t, WithProfile(prof))
	odd := load(WithBatchSize(7))
	iterations := 15
	if testing.Short() {
		iterations = 5
	}
	aggIterations := 8
	if testing.Short() {
		aggIterations = 3
	}
	for i := 0; i < iterations+aggIterations; i++ {
		sqlText := gen.next()
		if i >= iterations {
			sqlText = gen.nextPostOp()
		}
		rb, err := batch.Query(sqlText)
		if err != nil {
			t.Fatalf("query %d %q: %v", i, sqlText, err)
		}
		rr, err := row.Query(sqlText)
		if err != nil {
			t.Fatalf("query %d %q (row): %v", i, sqlText, err)
		}
		ro, err := odd.Query(sqlText)
		if err != nil {
			t.Fatalf("query %d %q (batch=7): %v", i, sqlText, err)
		}
		if !sameRows(rb.Rows, rr.Rows) || !sameRows(ro.Rows, rr.Rows) {
			t.Fatalf("query %d %q: batch %d / batch7 %d rows, row engine %d",
				i, sqlText, len(rb.Rows), len(ro.Rows), len(rr.Rows))
		}
		if d := diffReports(rb.Report, rr.Report); d != "" {
			t.Fatalf("query %d %q: engines diverge: %s\nbatch:\n%s\nrow:\n%s",
				i, sqlText, d, rb.Report, rr.Report)
		}
		if d := diffReports(ro.Report, rr.Report); d != "" {
			t.Fatalf("query %d %q: batch=7 diverges: %s\nbatch7:\n%s\nrow:\n%s",
				i, sqlText, d, ro.Report, rr.Report)
		}
	}
}
