package core

import (
	"testing"
)

// TestLimitAgainstOracle checks that LIMIT truncates deterministically
// (root-ID order) and agrees with the oracle under every plan.
func TestLimitAgainstOracle(t *testing.T) {
	db, orc, _ := loadTiny(t)
	queries := []string{
		`SELECT Pre.PreID FROM Prescription Pre WHERE Pre.Quantity > 20 LIMIT 5`,
		`SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Date > 2005-06-01 LIMIT 3`,
		`SELECT Pre.PreID, Med.Name FROM Prescription Pre, Medicine Med
			WHERE Med.Type = 'Antibiotic' LIMIT 7`,
	}
	for _, sqlText := range queries {
		res := checkAgainstOracle(t, db, orc, sqlText)
		q, err := db.Prepare(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) > q.Limit {
			t.Errorf("%s returned %d rows over LIMIT %d", sqlText, len(res.Rows), q.Limit)
		}
		// Every plan must agree with the auto plan's rows.
		for _, spec := range db.Plans(q) {
			r, err := db.QueryWithPlan(q, spec)
			if err != nil {
				t.Fatalf("%s / %s: %v", sqlText, spec.Label, err)
			}
			if !sameRows(r.Rows, res.Rows) {
				t.Errorf("%s / %s: LIMIT rows diverge", sqlText, spec.Label)
			}
		}
	}
}

// TestLimitLargerThanResult is a no-op truncation.
func TestLimitLargerThanResult(t *testing.T) {
	db, orc, _ := loadTiny(t)
	sqlText := `SELECT Doc.DocID FROM Doctor Doc WHERE Doc.Country = 'Spain' LIMIT 100000`
	checkAgainstOracle(t, db, orc, sqlText)
}
