package core

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/plan"
)

// Explain renders the plan in the spirit of Figure 5: the device pipeline
// with the untrusted inputs marked.
func (db *DB) Explain(q *plan.Query, spec plan.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s for %s\n", spec.Label, q.SQL)
	fmt.Fprintf(&b, "query root: %s", q.Root.Name)
	if spec.CrossFilter {
		b.WriteString("  [cross-filtering]")
	}
	b.WriteByte('\n')
	for i, p := range q.Preds {
		st := spec.Strategies[i]
		side := "UNTRUSTED"
		switch st {
		case plan.StratHidIndex, plan.StratHidPost, plan.StratVisDevice:
			side = "DEVICE"
		}
		fmt.Fprintf(&b, "  %-12s %-10s %s\n", st, side, p)
	}
	b.WriteString("  pipeline: [selections] -> merge/translate -> Access SKT")
	if len(q.VisiblePreds()) > 0 {
		b.WriteString(" -> bloom/verify")
	}
	b.WriteString(" -> Store -> project -> secure display\n")
	return b.String()
}
