package core

import (
	"fmt"
	"strings"

	"github.com/ghostdb/ghostdb/internal/plan"
)

// Explain renders the plan in the spirit of Figure 5: the device pipeline
// with the untrusted inputs marked.
func (db *DB) Explain(q *plan.Query, spec plan.Spec) string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s for %s\n", spec.Label, q.SQL)
	fmt.Fprintf(&b, "query root: %s", q.Root.Name)
	if spec.CrossFilter {
		b.WriteString("  [cross-filtering]")
	}
	b.WriteByte('\n')
	for i, p := range q.Preds {
		st := spec.Strategies[i]
		side := "UNTRUSTED"
		switch st {
		case plan.StratHidIndex, plan.StratHidPost, plan.StratVisDevice:
			side = "DEVICE"
		}
		fmt.Fprintf(&b, "  %-12s %-10s %s\n", st, side, p)
	}
	b.WriteString("  pipeline: [selections] -> merge/translate -> Access SKT")
	if len(q.VisiblePreds()) > 0 {
		b.WriteString(" -> bloom/verify")
	}
	b.WriteString(" -> Store -> project -> secure display\n")

	// Live-DML state: the per-table delta/tombstone cardinalities, and
	// this query's footprint (how many base root rows the pipeline will
	// subtract and re-evaluate against the effective state).
	db.mu.Lock()
	type deltaLine struct {
		name             string
		rows, tombstones int
	}
	var lines []deltaLine
	for _, d := range db.delta.Tables() {
		if d.Dirty() {
			lines = append(lines, deltaLine{d.Name(), d.Rows(), d.Tombstones()})
		}
	}
	var dirtyRoots, cands int
	if db.loaded && len(lines) > 0 {
		dead, cs := db.deltaFootprint(q)
		dirtyRoots, cands = len(dead), len(cs)
	}
	db.mu.Unlock()
	if len(lines) > 0 {
		b.WriteString("  delta:")
		for _, l := range lines {
			fmt.Fprintf(&b, " %s[%d rows, %d tombstones]", l.name, l.rows, l.tombstones)
		}
		fmt.Fprintf(&b, "\n  delta merge: subtract %d base root IDs, re-evaluate %d candidates\n", dirtyRoots, cands)
	}
	return b.String()
}
