// Package core is GhostDB's engine — the paper's primary contribution.
// It splits a database between an untrusted visible store and a simulated
// smart USB device along the HIDDEN column attribute, bulk-loads both
// sides with the device's index structures (Subtree Key Tables, climbing
// indexes), and executes SQL queries that mix visible and hidden data
// under the one-way rule: visible data flows into the device; neither
// hidden data nor intermediate results ever leave it. Results go to the
// secure display channel only.
package core

import (
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghostdb/ghostdb/internal/bus"
	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/delta"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/skt"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/storage/filedev"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
	"github.com/ghostdb/ghostdb/internal/visible"
)

// Options configure a DB.
type Options struct {
	Profile   device.Profile
	USB       bus.Profile
	LAN       bus.Profile
	Capture   trace.CaptureLevel
	TargetFPR float64 // Bloom target false-positive rate
	// DeviceIndexes lists visible columns ("Table.Column") that also get
	// a climbing index on the device, like Figure 4's Doctor.Country
	// index: the device can then evaluate the visible predicate itself
	// with zero bus traffic, at extra flash cost.
	DeviceIndexes []string
	// PlanCacheSize bounds the shared compiled-plan cache (entries).
	// Zero means the default (256); negative disables caching.
	PlanCacheSize int
	// BatchSize is the vectorization granularity of the execution
	// engine: how many IDs the operators hand over per batch, clamped to
	// at most exec.DefaultBatchSize (1024). Zero means the default
	// (1024); 1 (or negative) selects the row-at-a-time reference
	// engine. Granularity never changes simulated device times or tuple
	// counts — only host buffering.
	BatchSize int
	// DeltaLimit auto-checkpoints the live-DML delta: when the number of
	// delta rows plus tombstones reaches the limit after a mutation, the
	// engine runs a CHECKPOINT before returning. Zero or negative means
	// no automatic checkpoint (mutations fail with a RAM budget error
	// once the delta outgrows the device arena).
	DeltaLimit int
	// DisableMetrics turns the engine-wide metrics registry off
	// (MetricsSnapshot then returns nil). Metrics are on by default;
	// they cost a handful of atomic adds per query and never touch the
	// simulated clock.
	DisableMetrics bool
	// Hooks are tracing callbacks fired on query start/finish/error.
	Hooks []QueryHook
	// SlowQueryThreshold, when positive, counts queries whose wall-clock
	// latency reaches it in the slow_queries_total metric (see also
	// WithSlowQuery, which pairs the threshold with a slog logger).
	SlowQueryThreshold time.Duration
	// Shards splits the database over N simulated devices (N > 1): the
	// fact table at the schema root is partitioned round-robin on its
	// dense key, dimension tables are replicated, and queries run
	// scatter-gather across per-shard pipelines in parallel. Each shard
	// owns a full device stack — flash, RAM arena, bus, sim clock — so
	// reported simulated time becomes max-over-shards. 0 or 1 selects
	// the classic single-device engine.
	Shards int
	// FaultPlan arms the deterministic fault injector on the simulated
	// device stack (flash and bus). Nil — the default — injects nothing
	// and adds zero overhead. See fault.ParsePlan for the DSN grammar.
	FaultPlan *fault.Plan
	// DegradedReads lets a sharded DB keep serving dimension-rooted
	// queries from surviving replicas after a shard's device has died
	// (power cut, bus disconnect). Off by default: any query touching a
	// dead shard fails fast with the device's terminal error.
	DegradedReads bool
	// DisableIntegrity turns off the per-page out-of-band checksums the
	// flash layer maintains (modeled as pipelined hardware ECC, so they
	// never charge the simulated clock). Benchmarks use it to measure
	// the durability machinery's overhead; with it off, torn writes and
	// bit flips go undetected.
	DisableIntegrity bool
	// Backend selects the storage backend under the device's flash
	// allocator. The zero value (or Kind "sim") is the simulated NAND
	// chip, whose operations charge the simulated clock. Kind "file"
	// stores pages in real files under Backend.Path — Open CREATES the
	// device there, wiping any previous contents; OpenPath reopens an
	// existing file-backed database. A sharded file-backed DB puts each
	// child device in a "shardN" subdirectory of Path.
	Backend storage.Config
}

// Option mutates Options.
type Option func(*Options)

// WithProfile selects the device hardware profile.
func WithProfile(p device.Profile) Option { return func(o *Options) { o.Profile = p } }

// WithUSB selects the terminal<->device channel profile.
func WithUSB(p bus.Profile) Option { return func(o *Options) { o.USB = p } }

// WithCapture selects how much wire payload the trace records.
func WithCapture(l trace.CaptureLevel) Option { return func(o *Options) { o.Capture = l } }

// WithTargetFPR sets the Bloom filters' target false-positive rate.
func WithTargetFPR(f float64) Option { return func(o *Options) { o.TargetFPR = f } }

// WithDeviceIndex additionally builds a device climbing index on a
// visible column (Figure 4 shows one on Doctor.Country), enabling the
// device-index strategy for its predicates.
func WithDeviceIndex(table, column string) Option {
	return func(o *Options) { o.DeviceIndexes = append(o.DeviceIndexes, table+"."+column) }
}

// WithPlanCacheSize bounds the compiled-plan cache to n entries (LRU).
// Pass a negative n to disable plan caching: every Query then compiles
// from scratch, which is how the engine behaved before the cache.
func WithPlanCacheSize(n int) Option {
	return func(o *Options) {
		if n == 0 {
			n = -1 // explicit zero means "no cache", not "default"
		}
		o.PlanCacheSize = n
	}
}

// WithBatchSize sets the execution engine's vectorization granularity
// (IDs per operator batch, clamped to at most exec.DefaultBatchSize).
// n <= 1 selects the row-at-a-time reference engine; by construction
// every granularity reports bit-identical simulated device times, tuple
// counts and wire traffic — only host CPU time differs.
func WithBatchSize(n int) Option {
	return func(o *Options) {
		if n < 1 {
			n = 1
		}
		o.BatchSize = n
	}
}

// WithDeltaLimit auto-checkpoints once the delta holds n entries (rows
// plus tombstones) after a mutation. n <= 0 disables auto-checkpointing.
func WithDeltaLimit(n int) Option {
	return func(o *Options) { o.DeltaLimit = n }
}

// WithShards splits the database over n simulated devices (see
// Options.Shards). n <= 1 selects the classic single-device engine.
func WithShards(n int) Option {
	return func(o *Options) { o.Shards = n }
}

// WithFaultPlan arms the deterministic fault injector with the given
// plan (see Options.FaultPlan). Pass nil to disable injection.
func WithFaultPlan(p *fault.Plan) Option {
	return func(o *Options) { o.FaultPlan = p }
}

// WithDegradedReads lets a sharded DB serve dimension-rooted queries
// from surviving replicas when a shard's device has died (see
// Options.DegradedReads).
func WithDegradedReads(on bool) Option {
	return func(o *Options) { o.DegradedReads = on }
}

// WithIntegrity enables (the default) or disables the flash layer's
// per-page checksums (see Options.DisableIntegrity).
func WithIntegrity(on bool) Option {
	return func(o *Options) { o.DisableIntegrity = !on }
}

// WithBackend selects the storage backend (see Options.Backend). The
// usual configs are storage.Sim() and storage.File(path, fsync).
func WithBackend(cfg storage.Config) Option {
	return func(o *Options) { o.Backend = cfg }
}

// WithMetrics enables (the default) or disables the engine-wide metrics
// registry.
func WithMetrics(enabled bool) Option {
	return func(o *Options) { o.DisableMetrics = !enabled }
}

// WithQueryHook registers a tracing hook fired on query start, finish
// and error (see QueryHook). Hooks run on the querying goroutine;
// multiple hooks fire in registration order.
func WithQueryHook(h QueryHook) Option {
	return func(o *Options) {
		if h != nil {
			o.Hooks = append(o.Hooks, h)
		}
	}
}

// WithSlowQuery arms the built-in slow-query logger: queries whose
// wall-clock latency reaches d are logged through slog (Default when lg
// is nil) and counted in slow_queries_total. d <= 0 is a no-op.
func WithSlowQuery(d time.Duration, lg *slog.Logger) Option {
	return func(o *Options) {
		if d <= 0 {
			return
		}
		o.SlowQueryThreshold = d
		o.Hooks = append(o.Hooks, SlowQueryHook(d, lg))
	}
}

func defaultOptions() Options {
	return Options{
		Profile:   device.SmartUSB2007(),
		USB:       bus.USBFullSpeed(),
		LAN:       bus.LAN(),
		Capture:   trace.CaptureMeta,
		TargetFPR: 0.01,
	}
}

// ErrClosed is returned by every DB and Session operation after Close.
var ErrClosed = errors.New("core: database is closed")

// DB is a GhostDB instance: schema, visible store, device-resident hidden
// store and indexes, and the wiring between them.
//
// A DB is safe for concurrent use by multiple goroutines. There is exactly
// one simulated smart USB device per DB, and the device is a single-core
// chip with a private clock, RAM arena and scratch flash — so query
// execution against it is serialized by the device gate (db.mu), exactly
// as a hardware token would serialize its USB command stream. Host-side
// work (parsing, binding, plan enumeration) runs outside the gate.
type DB struct {
	opts Options

	clock *sim.Clock
	dev   *device.Device
	env   *exec.Env
	net   *bus.Network
	rec   *trace.Recorder

	// batchSize is the resolved vectorization granularity (>1 batches,
	// 1 row-at-a-time).
	batchSize int

	// planCache memoizes compiled query shapes across all sessions. It
	// has its own (sharded) locking: cache traffic never takes the
	// device gate.
	planCache *planCache

	// metrics is the engine-wide observability registry (nil when
	// disabled); feeds are atomic and never take the device gate.
	metrics *engineMetrics
	// hooks are the query tracing callbacks, immutable after Open.
	hooks []QueryHook
	// checkpointsRun counts CHECKPOINT merges that absorbed entries,
	// readable without the device gate.
	checkpointsRun atomic.Int64

	// inj is the armed fault injector (nil when no plan targets this
	// device). Immutable after Open.
	inj *fault.Injector
	// fatalErr latches the first unrecoverable device error — power cut,
	// bus disconnect, or a failed commit that may have left flash torn.
	// Once set, every query and mutation fails fast with it; the path
	// back is Snapshot + Recover. Read lock-free on query entry.
	fatalErr atomic.Pointer[fatalCause]

	// mu is the device gate: it serializes bulk load and query execution
	// on the simulated device and guards all fields below it.
	mu          sync.Mutex
	closed      bool
	nextSession int
	sessions    int // open session count

	sch *schema.Schema
	vis *visible.Store
	hid *store.Store

	skts       map[string]*skt.SKT                   // per table with a subtree
	indexes    map[string]map[string]*climbing.Index // table -> column -> index
	rowCounts  map[string]int
	hiddenVals *schema.HiddenValueSet

	// fkArrays and inverted retain the base foreign-key edges after the
	// bulk load ("table.fkcol" -> per-row referenced ID; "parent<-child"
	// -> child ID -> referencing parent rows). Row identifiers are public
	// by design — the primary keys live on the untrusted side too — so
	// keeping them host-side leaks nothing. The live-DML merge uses them
	// to find which base query-root rows a mutated row reaches.
	fkArrays map[string][]uint32
	inverted map[string][][]uint32

	// delta holds the post-build mutations (inserted/updated row images,
	// tombstones), charged against the device RAM arena for its hidden
	// share. Guarded by mu like the rest of the engine state.
	delta *delta.Store

	staged map[string][][]value.Value // INSERT staging before Build
	loaded bool

	// version numbers the committed device states: 0 is the bulk load,
	// each CHECKPOINT commit increments it. The commit record for
	// version v lives in record slot v%2.
	version uint64
	// committedVis retains the visible (non-hidden, non-PK) column data
	// of the last two committed versions, keyed version -> table -> column
	// (lowercased). Recovery pairs it with the flash image: the paper's
	// visible store is server-durable, the device is what crashes. Inner
	// slices are shared by reference and never mutated.
	committedVis map[uint64]map[string]map[string][]value.Value
	// ddl retains the CREATE TABLE statements in application order so a
	// recovered DB can rebuild the same catalog.
	ddl []string
	// rootGlobals maps shard-local root identifiers (index l-1) to global
	// ones on a shard child; nil on a single-device DB and on the
	// coordinator. The commit record persists it next to the data.
	rootGlobals []uint32

	// shards is non-nil when this DB is a scatter-gather coordinator
	// over N > 1 child devices (see WithShards). Immutable after Open;
	// the set's own RW lock arbitrates queries against DML/CHECKPOINT,
	// so the coordinator's device gate is not held during fan-out.
	shards *shardSet
}

// Open creates an empty GhostDB.
func Open(options ...Option) (*DB, error) {
	opts := defaultOptions()
	for _, o := range options {
		o(&opts)
	}
	return openResolved(opts)
}

// openResolved builds a DB from fully resolved options. Open and
// Recover both land here.
func openResolved(opts Options) (*DB, error) {
	if err := opts.Backend.Validate(); err != nil {
		return nil, err
	}
	coordOpts := opts
	if opts.Shards > 1 && opts.Backend.IsFile() {
		// The coordinator owns no flash worth persisting — its device
		// stays empty — so it always runs on the simulated backend; the
		// children get one shardN subdirectory each. A fresh sharded open
		// clears the whole path so stale shard directories from an earlier
		// layout cannot survive.
		coordOpts.Backend = storage.Sim()
		if err := filedev.Wipe(opts.Backend.Path); err != nil {
			return nil, fmt.Errorf("core: clearing %s: %w", opts.Backend.Path, err)
		}
	}
	db, err := openSingle(coordOpts)
	if err != nil {
		return nil, err
	}
	if opts.Shards > 1 {
		// Each shard is a complete single-device engine with its own
		// clock, flash, RAM arena and buses. Children never run hooks or
		// auto-checkpoint on their own: the coordinator observes queries
		// and drives CHECKPOINT from the logical delta size, so the
		// global root mapping stays consistent.
		copts := opts
		copts.Shards = 0
		copts.DeltaLimit = 0
		copts.Hooks = nil
		copts.SlowQueryThreshold = 0
		children := make([]*DB, opts.Shards)
		for i := range children {
			if opts.Backend.IsFile() {
				copts.Backend.Path = shardPath(opts.Backend.Path, i)
			}
			c, err := openSingle(copts)
			if err != nil {
				return nil, err
			}
			// The fault plan addresses shard children, not the
			// coordinator: the coordinator owns no flash worth failing.
			c.installFault(opts.FaultPlan, i)
			children[i] = c
		}
		db.shards = &shardSet{children: children}
	} else {
		db.installFault(opts.FaultPlan, 0)
	}
	return db, nil
}

// installFault arms the fault injector on this device's flash and bus,
// wiring its observations into the engine metrics. A nil plan — or one
// targeting a different shard — leaves the device clean.
func (db *DB) installFault(p *fault.Plan, shard int) {
	inj := fault.New(p, shard)
	if inj == nil {
		return
	}
	inj.SetSink(faultSink{db.metrics})
	// The secure-setting bulk load is fault-free (the device is
	// provisioned at the publisher); build arms the injector when the
	// database goes live, so cutop/failop count operational ops only.
	inj.Disarm()
	db.inj = inj
	db.dev.Flash.SetInjector(inj)
	db.net.SetInjector(inj)
}

// fatalCause boxes the latched terminal device error.
type fatalCause struct{ err error }

// setFatal latches the first unrecoverable device error. Later calls
// keep the original cause.
func (db *DB) setFatal(err error) {
	if err == nil {
		return
	}
	db.fatalErr.CompareAndSwap(nil, &fatalCause{err: err})
}

// fatalError returns the latched terminal error wrapped for callers, or
// nil while the device is healthy.
func (db *DB) fatalError() error {
	if c := db.fatalErr.Load(); c != nil {
		return fmt.Errorf("core: device unavailable: %w", c.err)
	}
	return nil
}

// FatalError reports the terminal device error that took this DB down
// (power cut, bus disconnect, failed commit), or nil while it is
// healthy. A fatal DB rejects queries and mutations; recover with
// Snapshot + Recover.
func (db *DB) FatalError() error {
	if c := db.fatalErr.Load(); c != nil {
		return c.err
	}
	return nil
}

// noteDeviceErr latches err as fatal when it indicates the device is
// gone for good (power cut, bus disconnect, or a corrupted read that
// survived the retry ladder is NOT fatal — only dead devices are).
func (db *DB) noteDeviceErr(err error) {
	if fault.IsDeviceDead(err) {
		db.setFatal(err)
	}
}

// IsDeviceDead reports whether err (anywhere in its chain) says the
// simulated device is gone — powered off or disconnected — rather than
// merely failing one operation.
func IsDeviceDead(err error) bool { return fault.IsDeviceDead(err) }

// IsFaultFatal reports whether err is a non-retryable device failure:
// a permanent fault, a dead device, or detected flash corruption. The
// database/sql driver maps these to driver.ErrBadConn.
func IsFaultFatal(err error) bool {
	return fault.IsFatal(err) || errors.Is(err, flash.ErrCorrupt)
}

// shardPath returns shard i's device directory under a sharded file
// backend's root path.
func shardPath(root string, i int) string {
	return filepath.Join(root, fmt.Sprintf("shard%d", i))
}

// openSingle builds one single-device engine from resolved options.
func openSingle(opts Options) (*DB, error) {
	clock := sim.NewClock()
	var dev *device.Device
	var err error
	if opts.Backend.IsFile() {
		// Open creates the device: any previous contents at the path are
		// wiped first (reopening an existing database is OpenPath's job,
		// which lifts the flash images before landing here).
		if err := filedev.Wipe(opts.Backend.Path); err != nil {
			return nil, fmt.Errorf("core: clearing %s: %w", opts.Backend.Path, err)
		}
		fd, ferr := filedev.Open(opts.Backend.Path, opts.Profile.Flash, opts.Backend.Fsync)
		if ferr != nil {
			return nil, ferr
		}
		dev, err = device.NewWithBackend(opts.Profile, clock, fd)
		if err != nil {
			fd.Close()
		}
	} else {
		dev, err = device.New(opts.Profile, clock)
	}
	if err != nil {
		return nil, err
	}
	if opts.DisableIntegrity {
		dev.Flash.SetIntegrity(false)
	}
	rec := trace.NewRecorder(opts.Capture)
	net := bus.NewNetwork(clock, rec)
	net.Connect(trace.Terminal, trace.Server, opts.LAN)
	net.Connect(trace.Terminal, trace.Device, opts.USB)
	net.Connect(trace.Device, trace.Display, opts.USB)
	cacheSize := opts.PlanCacheSize
	if cacheSize == 0 {
		cacheSize = 256
	}
	batchSize := opts.BatchSize
	if batchSize == 0 {
		batchSize = exec.DefaultBatchSize
	}
	env := exec.NewEnv(dev)
	if batchSize > 1 {
		env.SetBatchLen(batchSize)
	}
	var em *engineMetrics
	if !opts.DisableMetrics {
		em = newEngineMetrics()
	}
	return &DB{
		opts:       opts,
		clock:      clock,
		dev:        dev,
		env:        env,
		batchSize:  batchSize,
		net:        net,
		rec:        rec,
		planCache:  newPlanCache(cacheSize),
		metrics:    em,
		hooks:      opts.Hooks,
		sch:        schema.New(),
		vis:        visible.NewStore(),
		skts:       map[string]*skt.SKT{},
		indexes:    map[string]map[string]*climbing.Index{},
		rowCounts:  map[string]int{},
		hiddenVals: schema.NewHiddenValueSet(),
		fkArrays:   map[string][]uint32{},
		inverted:   map[string][][]uint32{},
		delta:      delta.NewStore(dev.RAM),
		staged:     map[string][][]value.Value{},
	}, nil
}

// Schema exposes the catalog.
func (db *DB) Schema() *schema.Schema { return db.sch }

// ViewSchema runs fn with the schema and load state under the DB's
// staging lock, so wire front-ends can render a consistent view while
// DDL may still be staging on other sessions. fn must not call back
// into the DB.
func (db *DB) ViewSchema(fn func(sch *schema.Schema, loaded bool)) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	fn(db.sch, db.loaded)
	return nil
}

// Device exposes the simulated device (benchmarks inspect its stats).
func (db *DB) Device() *device.Device { return db.dev }

// Recorder exposes the wire trace.
func (db *DB) Recorder() *trace.Recorder { return db.rec }

// Clock exposes the simulated clock.
func (db *DB) Clock() *sim.Clock { return db.clock }

// HiddenValues reports the set of string values stored in hidden columns,
// used by the security audit.
func (db *DB) HiddenValues() *schema.HiddenValueSet { return db.hiddenVals }

// RowCount reports a table's base-segment cardinality after loading
// (live DML does not change it until the next CHECKPOINT).
func (db *DB) RowCount(table string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.rowCounts[table]
}

// NextID reports the dense primary key the next INSERT into table must
// carry. GhostDB identifiers are positional and application-assigned;
// concurrent writers use this to coordinate (and retry on the dense-key
// error if they race).
func (db *DB) NextID(table string) (uint32, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	t, ok := db.sch.Table(table)
	if !ok {
		return 0, fmt.Errorf("core: unknown table %s", table)
	}
	if !db.loaded {
		return uint32(len(db.staged[t.Name])) + 1, nil
	}
	if db.shards != nil {
		return db.shards.nextID(db, t.Name)
	}
	if d, ok := db.delta.Get(t.Name); ok {
		return d.NextID(), nil
	}
	return uint32(db.rowCounts[t.Name]) + 1, nil
}

// DeltaStats summarizes the live-DML delta of one table.
type DeltaStats struct {
	Table      string
	Rows       int   // delta-resident row images (inserts + updates)
	Tombstones int   // deleted identifiers
	DeviceB    int64 // hidden share charged to the device RAM arena
	HostB      int64 // visible share held in host memory
}

// DeltaStats reports the current delta per table (sorted by name), for
// EXPLAIN, monitoring and tests. Empty when no DML happened since the
// last CHECKPOINT.
func (db *DB) DeltaStats() []DeltaStats {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.shards != nil {
		return db.shards.deltaStats(db)
	}
	var out []DeltaStats
	for _, d := range db.delta.Tables() {
		if !d.Dirty() {
			continue
		}
		out = append(out, DeltaStats{
			Table:      d.Name(),
			Rows:       d.Rows(),
			Tombstones: d.Tombstones(),
			DeviceB:    d.DeviceBytes(),
			HostB:      d.HostBytes(),
		})
	}
	return out
}

// DeltaSummary is the whole-engine view of the live-DML state: the
// delta's aggregate footprint plus the number of CHECKPOINTs that have
// merged it into flash — the counters an operator watches to decide when
// to checkpoint.
type DeltaSummary struct {
	Tables      int   // tables with a dirty delta
	Rows        int   // delta-resident row images across all tables
	Tombstones  int   // deleted identifiers across all tables
	DeviceBytes int64 // hidden share charged to the device RAM arena
	HostBytes   int64 // visible share held in host memory
	Checkpoints int64 // CHECKPOINTs run over the database's lifetime
}

// DeltaSummary aggregates DeltaStats across tables and adds the
// lifetime checkpoint count. It is the driver-facing companion to
// PlanCacheStats: cheap enough to poll from a monitoring loop.
func (db *DB) DeltaSummary() DeltaSummary {
	s := DeltaSummary{Checkpoints: db.checkpointsRun.Load()}
	for _, d := range db.DeltaStats() {
		s.Tables++
		s.Rows += d.Rows
		s.Tombstones += d.Tombstones
		s.DeviceBytes += d.DeviceB
		s.HostBytes += d.HostB
	}
	return s
}

// Loaded reports whether the bulk load has been finalized.
func (db *DB) Loaded() bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.loaded
}

// Close shuts the database down. In-flight queries finish first (they
// hold the device gate); every subsequent operation on the DB or any of
// its sessions returns ErrClosed. Close is idempotent.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	db.closed = true
	if db.shards != nil {
		for _, c := range db.shards.children {
			c.Close()
		}
	}
	// Flush and release the storage backend (a no-op on the simulated
	// device; the file backend syncs dirty segments if asked to and drops
	// its segment handles). Committed state was already made durable at
	// each commit point, so a Sync error here is not fatal to the data.
	err := db.dev.Flash.Sync()
	if cerr := db.dev.Flash.Close(); err == nil {
		err = cerr
	}
	return err
}

// StorageBreakdown reports the device flash footprint by structure.
type StorageBreakdown struct {
	BaseColumns int64 // hidden column files
	SKTs        int64
	Climbing    int64
	Total       int64 // page-aligned main-space footprint
}

// Storage reports the flash cost of the hidden database and its indexes
// (experiment E5: "this benefit ... comes at an extra cost in terms of
// Flash storage").
func (db *DB) Storage() StorageBreakdown {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.shards != nil {
		var b StorageBreakdown
		for _, c := range db.shards.children {
			cb := c.Storage()
			b.BaseColumns += cb.BaseColumns
			b.SKTs += cb.SKTs
			b.Climbing += cb.Climbing
			b.Total += cb.Total
		}
		return b
	}
	var b StorageBreakdown
	for _, s := range db.skts {
		b.SKTs += s.Bytes()
	}
	for _, cols := range db.indexes {
		for _, ix := range cols {
			b.Climbing += ix.Bytes()
		}
	}
	b.Total = db.dev.Main.UsedBytes()
	b.BaseColumns = b.Total - b.SKTs - b.Climbing
	return b
}

// ExecDDL applies a CREATE TABLE statement.
func (db *DB) ExecDDL(ddl string) error {
	stmt, err := sql.Parse(ddl)
	if err != nil {
		return err
	}
	ct, ok := stmt.(*sql.CreateTable)
	if !ok {
		return fmt.Errorf("core: ExecDDL expects CREATE TABLE, got %T", stmt)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.applyCreate(ct)
}

func (db *DB) applyCreate(ct *sql.CreateTable) error {
	if db.loaded {
		return errors.New("core: DDL after Build (GhostDB is bulk-loaded in a secure setting)")
	}
	cols := make([]schema.Column, len(ct.Columns))
	for i, c := range ct.Columns {
		cols[i] = schema.Column{
			Name:       c.Name,
			Type:       schema.Type{Kind: c.Type.Kind, Size: c.Type.Size},
			Hidden:     c.Hidden,
			PrimaryKey: c.PrimaryKey,
			RefTable:   c.RefTable,
			RefColumn:  c.RefColumn,
		}
	}
	t, err := schema.NewTable(ct.Table, cols)
	if err != nil {
		return err
	}
	if err := db.sch.AddTable(t); err != nil {
		return err
	}
	// Retained for Snapshot/Recover: a recovered DB replays the DDL to
	// rebuild an identical catalog before decoding the flash image.
	db.ddl = append(db.ddl, ct.String())
	// Shard children mirror the catalog so they can compile the same
	// query shapes and validate the same DML the coordinator accepts.
	if db.shards != nil {
		for _, c := range db.shards.children {
			c.mu.Lock()
			err := c.applyCreate(ct)
			c.mu.Unlock()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Insert applies an INSERT. Before Build the rows are staged for the
// bulk load; after Build they land in the RAM delta (live DML). Primary
// keys must be dense 1..N in insertion order — GhostDB identifiers are
// positional.
func (db *DB) Insert(ins *sql.Insert) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.insertLocked(ins)
}

func (db *DB) insertLocked(ins *sql.Insert) error {
	if db.loaded {
		if err := db.fatalError(); err != nil {
			return err
		}
		if db.shards != nil {
			return db.shards.insert(db, ins)
		}
		return db.deltaInsertLocked(ins)
	}
	t, ok := db.sch.Table(ins.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %s", ins.Table)
	}
	for ri, row := range ins.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("core: %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
		}
		for _, v := range row {
			if v.IsParam() {
				return fmt.Errorf("core: INSERT into %s carries an unbound '?' placeholder; bind arguments before staging", t.Name)
			}
		}
		pkVal := row[t.PrimaryKeyIndex()]
		want := int64(len(db.staged[t.Name]) + 1)
		if pkVal.Kind() != value.Int || pkVal.Int() != want {
			return fmt.Errorf("core: %s primary key must be dense: row %d needs key %d, got %s",
				t.Name, ri+1, want, pkVal)
		}
		db.staged[t.Name] = append(db.staged[t.Name], row)
	}
	return nil
}

// ExecScript runs a semicolon-separated script of CREATE TABLE and INSERT
// statements, then finalizes with Build.
func (db *DB) ExecScript(script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.stageLocked(stmts); err != nil {
		return err
	}
	return db.buildStaged()
}

// Stage applies CREATE TABLE and INSERT statements without finalizing the
// bulk load; Build or EnsureBuilt completes it. The database/sql driver
// routes ExecContext through Stage so DDL can span several Exec calls.
func (db *DB) Stage(script string) error {
	stmts, err := sql.ParseScript(script)
	if err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.stageLocked(stmts)
}

// StageStatements applies already-parsed CREATE TABLE and INSERT
// statements without finalizing the bulk load. The database/sql driver
// uses it to stage scripts it has parsed once (and whose placeholder
// arguments it has already bound) without a round trip through text.
func (db *DB) StageStatements(stmts []sql.Statement) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.stageLocked(stmts)
}

func (db *DB) stageLocked(stmts []sql.Statement) error {
	for _, s := range stmts {
		switch s := s.(type) {
		case *sql.CreateTable:
			if err := db.applyCreate(s); err != nil {
				return err
			}
		case *sql.Insert:
			if err := db.insertLocked(s); err != nil {
				return err
			}
		default:
			return fmt.Errorf("core: scripts may not contain %T", s)
		}
	}
	return nil
}

// EnsureBuilt finalizes staged data if the bulk load has not happened
// yet; it is a no-op on a loaded database.
func (db *DB) EnsureBuilt() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if db.loaded {
		return nil
	}
	return db.buildStaged()
}

// LoadDataset loads a generated dataset: DDL plus columnar rows.
func (db *DB) LoadDataset(ds *datagen.Dataset) error {
	stmts := make([]sql.Statement, 0, len(ds.DDL))
	for _, ddl := range ds.DDL {
		stmt, err := sql.Parse(ddl)
		if err != nil {
			return err
		}
		stmts = append(stmts, stmt)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.stageLocked(stmts); err != nil {
		return err
	}
	cols := map[string][][]value.Value{}
	for _, name := range ds.TableNames() {
		cols[name] = ds.Table(name).Cols
	}
	return db.build(cols)
}

// Build finalizes staged INSERT data into the two stores and the device
// index structures.
func (db *DB) Build() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	return db.buildStaged()
}

// buildStaged finalizes the staged INSERT data under the device gate.
func (db *DB) buildStaged() error {
	cols := map[string][][]value.Value{}
	for _, t := range db.sch.Tables() {
		rows := db.staged[t.Name]
		tcols := make([][]value.Value, len(t.Columns))
		for i := range t.Columns {
			tcols[i] = make([]value.Value, len(rows))
			for r, row := range rows {
				tcols[i][r] = row[i]
			}
		}
		cols[t.Name] = tcols
	}
	db.staged = map[string][][]value.Value{}
	return db.build(cols)
}

// build distributes columnar data for the initial bulk load. The load
// happens "in a secure setting" (Section 2), so it is not charged to the
// device clock or RAM budget: the simulated time and stats it consumed
// are rewound afterwards.
func (db *DB) build(cols map[string][][]value.Value) error {
	if db.loaded {
		return errors.New("core: already built")
	}
	if err := db.sch.Freeze(); err != nil {
		return err
	}
	if db.shards != nil {
		return db.buildSharded(cols)
	}
	if err := db.loadState(cols); err != nil {
		return err
	}

	// Commit version 0: stash the visible columns and write the first
	// commit record, so a crash at any later point can recover at least
	// the freshly loaded state. Still inside the secure setting, so the
	// record's flash cost is rewound along with the load's.
	db.stashCommitted(0, cols)
	if err := db.writeCommitRecord(); err != nil {
		return err
	}

	// The secure-setting load is free: rewind the simulated time it
	// consumed and reset operational stats.
	db.clock.Reset()
	db.dev.Flash.ResetStats()
	db.hid.Cache().ResetStats()
	db.dev.RAM.ResetHigh()
	db.net.ResetStats()
	db.rec.Reset()

	db.loaded = true
	db.inj.Arm() // go live: faults apply from here on
	return nil
}

// stashCommitted retains the visible (non-hidden, non-PK) column data
// of a committed version for Snapshot/Recover, pruning everything older
// than the previous version — the only one still recoverable from the
// A/B record slots. Inner slices are aliased, never copied or mutated.
func (db *DB) stashCommitted(version uint64, cols map[string][][]value.Value) {
	snap := make(map[string]map[string][]value.Value, len(db.sch.Tables()))
	for _, t := range db.sch.Tables() {
		tcols := cols[t.Name]
		m := map[string][]value.Value{}
		for i, c := range t.Columns {
			if c.Hidden || c.PrimaryKey || i >= len(tcols) {
				continue
			}
			m[strings.ToLower(c.Name)] = tcols[i]
		}
		snap[strings.ToLower(t.Name)] = m
	}
	if db.committedVis == nil {
		db.committedVis = map[uint64]map[string]map[string][]value.Value{}
	}
	db.committedVis[version] = snap
	if version >= 2 {
		delete(db.committedVis, version-2)
	}
}

// fkKey keys the retained foreign-key arrays.
func fkKey(table, col string) string { return strings.ToLower(table + "." + col) }

// invKey keys the retained inverted foreign-key edges.
func invKey(parent, child string) string { return strings.ToLower(parent + "<-" + child) }

// loadState builds fresh stores and device index structures from
// columnar data: visible columns and PKs to the public store; hidden
// columns, SKTs and climbing indexes to the device. It is shared by the
// bulk load (whose charges are then rewound) and by CHECKPOINT (which
// pays them as the cost of merging the delta into flash).
func (db *DB) loadState(cols map[string][][]value.Value) error {
	hid, err := store.New(db.dev)
	if err != nil {
		return err
	}
	db.hid = hid
	db.vis = visible.NewStore()
	db.skts = map[string]*skt.SKT{}
	db.indexes = map[string]map[string]*climbing.Index{}
	db.rowCounts = map[string]int{}

	// Foreign-key arrays (uint32) per table/column, for SKT and inverted
	// edge construction; retained for the live-DML merge.
	fkArrays := map[string][]uint32{}

	for _, t := range db.sch.Tables() {
		tcols, ok := cols[t.Name]
		if !ok || len(tcols) != len(t.Columns) {
			return fmt.Errorf("core: missing column data for %s", t.Name)
		}
		n := 0
		if len(tcols) > 0 {
			n = len(tcols[0])
		}
		for i := range tcols {
			if len(tcols[i]) != n {
				return fmt.Errorf("core: ragged columns in %s", t.Name)
			}
		}
		db.rowCounts[t.Name] = n

		// Visible side: PK plus visible columns.
		vt, err := db.vis.CreateTable(t.Name, n)
		if err != nil {
			return err
		}
		// Hidden side: hidden columns.
		if _, err := db.hid.CreateTable(t.Name, n); err != nil {
			return err
		}
		for i, c := range t.Columns {
			vals := tcols[i]
			if c.PrimaryKey {
				for r, v := range vals {
					if v.Kind() != value.Int || v.Int() != int64(r+1) {
						return fmt.Errorf("core: %s.%s must be dense 1..N (row %d has %s)", t.Name, c.Name, r, v)
					}
				}
			}
			if c.IsForeignKey() {
				refN := db.rowCounts[c.RefTable]
				ids := make([]uint32, len(vals))
				for r, v := range vals {
					if v.Kind() != value.Int || v.Int() < 1 || v.Int() > int64(refN) {
						return fmt.Errorf("core: %s.%s row %d: foreign key %s out of 1..%d", t.Name, c.Name, r, v, refN)
					}
					ids[r] = uint32(v.Int())
				}
				fkArrays[fkKey(t.Name, c.Name)] = ids
			}
			if c.Hidden {
				if _, err := db.hid.AddColumn(t.Name, c.Name, c.Type.Kind, vals); err != nil {
					return err
				}
				if c.Type.Kind == value.String {
					for _, v := range vals {
						db.hiddenVals.Add(v)
					}
				}
			} else {
				if err := vt.AddColumn(c.Name, c.Type.Kind, vals); err != nil {
					return err
				}
			}
		}
	}

	fkLookup := func(table, col string) ([]uint32, error) {
		ids, ok := fkArrays[fkKey(table, col)]
		if !ok {
			return nil, fmt.Errorf("core: no foreign key data for %s.%s", table, col)
		}
		return ids, nil
	}

	// Subtree Key Tables for every table that references others.
	for _, t := range db.sch.Tables() {
		if len(t.ForeignKeys()) == 0 {
			continue
		}
		s, err := skt.Build(db.hid, db.sch, t.Name, db.rowCounts[t.Name], fkLookup)
		if err != nil {
			return err
		}
		db.skts[t.Name] = s
	}

	// Inverted foreign-key edges, for climbing index construction and the
	// live-DML merge's upward propagation; retained after the load.
	inverted := map[string][][]uint32{}
	for _, t := range db.sch.Tables() {
		for _, fk := range t.ForeignKeys() {
			child := fk.RefTable
			childN := db.rowCounts[child]
			inv := make([][]uint32, childN)
			for parentIdx, childID := range fkArrays[fkKey(t.Name, fk.Name)] {
				inv[childID-1] = append(inv[childID-1], uint32(parentIdx+1))
			}
			inverted[invKey(t.Name, child)] = inv
		}
	}
	invLookup := func(parent, child string) ([][]uint32, error) {
		inv, ok := inverted[invKey(parent, child)]
		if !ok {
			return nil, fmt.Errorf("core: no inverted edge %s<-%s", parent, child)
		}
		return inv, nil
	}

	// Climbing indexes: every hidden column, dense translators on every
	// non-root primary key (the pre-filtering machinery), and any
	// visible columns requested via WithDeviceIndex.
	wantDevice := map[string]bool{}
	for _, spec := range db.opts.DeviceIndexes {
		wantDevice[strings.ToLower(spec)] = true
	}
	root := db.sch.Root()
	for _, t := range db.sch.Tables() {
		tcols := cols[t.Name]
		for i, c := range t.Columns {
			dense := false
			switch {
			case c.Hidden:
				// regular hidden-column index
			case c.PrimaryKey && t.Name != root.Name:
				dense = true
			case wantDevice[strings.ToLower(t.Name+"."+c.Name)]:
				// visible column promoted to a device index
			default:
				continue
			}
			ix, err := climbing.Build(db.hid, db.sch, t.Name, c.Name, c.Type.Kind, tcols[i], dense, invLookup)
			if err != nil {
				return err
			}
			if db.indexes[t.Name] == nil {
				db.indexes[t.Name] = map[string]*climbing.Index{}
			}
			db.indexes[t.Name][c.Name] = ix
		}
	}

	db.fkArrays = fkArrays
	db.inverted = inverted
	return nil
}

// Index returns the climbing index on table.column, if any.
func (db *DB) Index(table, column string) (*climbing.Index, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.indexLocked(table, column)
}

// indexLocked is Index for callers already holding the device gate.
func (db *DB) indexLocked(table, column string) (*climbing.Index, bool) {
	cols, ok := db.indexes[table]
	if !ok {
		return nil, false
	}
	for name, ix := range cols {
		if strings.EqualFold(name, column) {
			return ix, true
		}
	}
	return nil, false
}

// HasIndex reports whether a climbing index exists (planner callback).
func (db *DB) HasIndex(table, column string) bool {
	_, ok := db.Index(table, column)
	return ok
}

// hasIndexLocked is HasIndex for callers already holding the device gate.
// A sharded coordinator builds no indexes of its own; every shard carries
// the same index set, so shard 0 answers for all.
func (db *DB) hasIndexLocked(table, column string) bool {
	if db.shards != nil {
		return db.shards.children[0].HasIndex(table, column)
	}
	_, ok := db.indexLocked(table, column)
	return ok
}

// SmallProfileForTest returns a 16 KB, 2-cache-frame device profile for
// tests exercising the tightest RAM paths.
func SmallProfileForTest() device.Profile {
	p := device.SmartUSB2007().WithRAM(16 << 10)
	p.CacheFrames = 2
	return p
}

// translator returns the dense climbing index on the table's primary
// key. Callers must hold the device gate.
func (db *DB) translator(table string) (*climbing.Index, error) {
	t, ok := db.sch.Table(table)
	if !ok {
		return nil, fmt.Errorf("core: unknown table %s", table)
	}
	ix, ok := db.indexLocked(t.Name, t.PrimaryKey().Name)
	if !ok {
		return nil, fmt.Errorf("core: no translator index on %s", table)
	}
	return ix, nil
}
