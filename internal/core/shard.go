package core

// Multi-device sharding: one coordinator DB fans a query out to N
// complete single-device engines ("shards") and merges their streams
// host-side. The fact table at the schema root is partitioned
// round-robin on its dense key; every dimension table is fully
// replicated on every shard, which is safe in GhostDB's tree schema
// because foreign keys always point from the root toward the
// dimensions — a shard can therefore evaluate any query subtree
// locally. Each shard owns its own flash, RAM arena, buses and
// simulated clock; the clocks advance independently and the merged
// report's simulated time is the max over the shards, so the reported
// speedup is exactly the paper's cost model run N times in parallel.
//
// Host-side merging follows the secure-display rule: like the
// single-device finishing stage, the coordinator's k-way merge, partial
// aggregation merge and top-K recombination charge no simulated clock
// and send nothing over the traced buses.
//
// Concurrency: the shardSet carries its own RW lock. Queries hold the
// read side for the whole scatter-gather (shard pipelines serialize on
// each child's device gate, but different shards run in parallel);
// DML, INSERT and CHECKPOINT hold the write side so the global root
// mapping never shifts under a running query. Lock order is always
// coordinator db.mu (optional) -> shardSet.mu -> child db.mu.
//
// Cross-shard root INSERTs are not atomic: rows route to their shards
// one statement per shard, and a mid-statement failure (e.g. a foreign
// key killed by a concurrent DELETE) can leave earlier shards applied.
// The coordinator pre-validates arity, coercion and global key density
// to make that window small; if it is ever hit, the global mapping and
// the shard disagree and queries fail with an explicit "outside the
// global root mapping" error rather than returning wrong rows.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// shardLoc places one global root row: which shard holds it and under
// which shard-local dense identifier.
type shardLoc struct {
	shard uint32
	local uint32
}

// shardSet is the coordinator's view of its child devices and the
// global<->local root identifier mapping.
type shardSet struct {
	children []*DB

	// rr round-robins dimension-rooted queries across shards (their
	// tables are replicated, so any shard can answer alone).
	rr atomic.Uint64

	// mu arbitrates queries (read side) against INSERT/DML/CHECKPOINT
	// (write side), which rewrite the mapping below.
	mu sync.RWMutex
	// rootMap maps global root ID g (index g-1) to its shard location.
	rootMap []shardLoc
	// localToGlobal maps, per shard, local root ID l (index l-1) back to
	// the global ID. Strictly increasing per shard: the initial
	// round-robin split, appended INSERTs and CHECKPOINT's renumbering
	// (which walks the old mapping in global order) all preserve it, and
	// the query merge relies on it — per-shard physical rows arrive in
	// local root order, hence also in global root order.
	localToGlobal [][]uint32
}

// ---------------------------------------------------------------------------
// Bulk load.

// buildSharded distributes the bulk-load columns over the shard set:
// the root table round-robin with synthesized shard-local dense keys,
// dimension tables replicated as-is (the column slices are shared
// read-only across children). The coordinator keeps the global row
// counts and the hidden-value audit set; its own device stays empty.
func (db *DB) buildSharded(cols map[string][][]value.Value) error {
	ss := db.shards
	n := len(ss.children)
	root := db.sch.Root()

	rcols, ok := cols[root.Name]
	if !ok || len(rcols) != len(root.Columns) {
		return fmt.Errorf("core: missing column data for %s", root.Name)
	}
	rows := 0
	if len(rcols) > 0 {
		rows = len(rcols[0])
	}
	for i := range rcols {
		if len(rcols[i]) != rows {
			return fmt.Errorf("core: ragged columns in %s", root.Name)
		}
	}
	pkIdx := root.PrimaryKeyIndex()
	for r, v := range rcols[pkIdx] {
		if v.Kind() != value.Int || v.Int() != int64(r+1) {
			return fmt.Errorf("core: %s.%s must be dense 1..N (row %d has %s)",
				root.Name, root.PrimaryKey().Name, r, v)
		}
	}

	// Partition the root: global row r (0-based) goes to shard r%n under
	// the next local identifier; the PK column is rewritten to the local
	// dense sequence.
	perShard := make([]map[string][][]value.Value, n)
	shardCols := make([][][]value.Value, n)
	for s := 0; s < n; s++ {
		shardCols[s] = make([][]value.Value, len(root.Columns))
	}
	ss.rootMap = make([]shardLoc, rows)
	ss.localToGlobal = make([][]uint32, n)
	for r := 0; r < rows; r++ {
		s := r % n
		local := len(shardCols[s][pkIdx]) + 1
		for ci := range root.Columns {
			v := rcols[ci][r]
			if ci == pkIdx {
				v = value.NewInt(int64(local))
			}
			shardCols[s][ci] = append(shardCols[s][ci], v)
		}
		ss.rootMap[r] = shardLoc{shard: uint32(s), local: uint32(local)}
		ss.localToGlobal[s] = append(ss.localToGlobal[s], uint32(r+1))
	}

	for s := range ss.children {
		child := map[string][][]value.Value{}
		for name, tc := range cols {
			if name == root.Name {
				continue
			}
			child[name] = tc // replicated dimensions share the slices
		}
		child[root.Name] = shardCols[s]
		perShard[s] = child
	}

	for s, c := range ss.children {
		c.mu.Lock()
		// Each child's commit record persists its local->global root
		// mapping alongside the data, so recovery from the shard images
		// alone can reassemble the global order.
		c.rootGlobals = append([]uint32(nil), ss.localToGlobal[s]...)
		err := c.build(perShard[s])
		c.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: shard %d load: %w", s, err)
		}
	}

	// Coordinator bookkeeping: global cardinalities for the cost model
	// and the hidden-value audit set (values live on every shard, but the
	// audit is a property of the database, not of a device).
	for _, t := range db.sch.Tables() {
		tcols, ok := cols[t.Name]
		if !ok {
			return fmt.Errorf("core: missing column data for %s", t.Name)
		}
		cnt := 0
		if len(tcols) > 0 {
			cnt = len(tcols[0])
		}
		db.rowCounts[t.Name] = cnt
		for ci, col := range t.Columns {
			if col.Hidden && col.Type.Kind == value.String {
				for _, v := range tcols[ci] {
					db.hiddenVals.Add(v)
				}
			}
		}
	}

	db.loaded = true
	return nil
}

// ---------------------------------------------------------------------------
// Query execution: scatter-gather.

// runSharded executes one bound query over the shard set. Root-rooted
// queries scatter to every shard and gather host-side; dimension-rooted
// queries run whole on one round-robin-chosen shard (the dimensions are
// replicated), which is what lets independent dimension queries from
// concurrent sessions use all the devices at once.
func (db *DB) runSharded(sqlText string, params []value.Value, bound *plan.Query, cfg *queryConfig) (*Result, error) {
	db.mu.Lock()
	closed, loaded := db.closed, db.loaded
	db.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !loaded {
		return nil, fmt.Errorf("core: query before Build")
	}

	ss := db.shards
	ss.mu.RLock()
	defer ss.mu.RUnlock()

	root := db.sch.Root()
	if !strings.EqualFold(bound.Root.Name, root.Name) {
		return db.runReplica(sqlText, params, cfg)
	}
	// A root-rooted query needs every partition; one dead shard means an
	// incomplete answer, so fail fast with its terminal error rather than
	// silently dropping rows.
	for s, c := range ss.children {
		if err := c.FatalError(); err != nil {
			return nil, fmt.Errorf("core: shard %d unavailable: %w", s, err)
		}
	}
	return db.runScatter(sqlText, params, bound, cfg, root.Name, root.PrimaryKey().Name)
}

// cloneCfg copies a query config for one shard, deep-copying the forced
// spec so concurrent shard validations never share a mutable Spec.
func cloneCfg(cfg *queryConfig) *queryConfig {
	out := *cfg
	if cfg.spec != nil {
		fs := cfg.spec.Clone()
		out.spec = &fs
	}
	return &out
}

// runReplica routes a dimension-rooted query, finishing included, to
// one shard chosen round-robin. With WithDegradedReads, dead shards are
// skipped — the dimensions are replicated, so any survivor answers
// exactly; without it, a dead shard anywhere fails the query fast, like
// the scatter path. Caller holds ss.mu.RLock.
func (db *DB) runReplica(sqlText string, params []value.Value, cfg *queryConfig) (*Result, error) {
	ss := db.shards
	if !db.opts.DegradedReads {
		for s, c := range ss.children {
			if err := c.FatalError(); err != nil {
				return nil, fmt.Errorf("core: shard %d unavailable: %w", s, err)
			}
		}
	}
	n := len(ss.children)
	start := int(ss.rr.Add(1)-1) % n
	s := -1
	for i := 0; i < n; i++ {
		if cand := (start + i) % n; ss.children[cand].FatalError() == nil {
			s = cand
			break
		}
	}
	if s < 0 {
		return nil, fmt.Errorf("core: all %d shards unavailable: %w", n, ss.children[start].FatalError())
	}
	child := ss.children[s]
	ccq, _, err := child.compileCached(sqlText)
	if err != nil {
		return nil, err
	}
	cbound, err := ccq.shape.BindParams(params)
	if err != nil {
		return nil, err
	}
	res, err := ccq.runBound(cbound, cloneCfg(cfg), false)
	if err != nil {
		return nil, err
	}
	reports := make([]*stats.Report, len(ss.children))
	reports[s] = res.Report
	res.ShardReports = reports
	db.feedShardMetrics(res.Report)
	return res, nil
}

// shardGroup is one exported aggregation partial: the group's key
// tuple, its raw accumulator states, and the smallest global root that
// contributed (the group-creation order stamp).
type shardGroup struct {
	keys  []value.Value
	accs  []exec.AggState
	first int64
}

// shardOut is one shard's contribution to the gather phase. Exactly one
// of groups/rows/roots is populated, matching the query class.
type shardOut struct {
	res    *Result
	groups []shardGroup    // aggregate partials
	rows   [][]value.Value // post-op candidates, width+1 with trailing global root
	roots  []uint32        // global roots parallel to res.Rows (no post-ops)
	err    error
}

// runScatter fans the query to every shard in parallel and merges the
// per-shard streams host-side. Caller holds ss.mu.RLock.
func (db *DB) runScatter(sqlText string, params []value.Value, bound *plan.Query, cfg *queryConfig, rootName, pkName string) (*Result, error) {
	ss := db.shards
	n := len(ss.children)
	outs := make([]shardOut, n)
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			outs[s] = db.runShard(s, sqlText, params, cfg, rootName, pkName)
		}(s)
	}
	wg.Wait()
	for s := range outs {
		if outs[s].err != nil {
			return nil, fmt.Errorf("core: shard %d: %w", s, outs[s].err)
		}
	}

	// Merge the execution reports: simulated time and RAM are per-device
	// maxima (the devices run concurrently), flash and bus work are sums.
	rep := &stats.Report{Query: sqlText}
	reports := make([]*stats.Report, n)
	res := &Result{
		Columns: append([]string(nil), bound.ColumnLabels()...),
		Report:  rep,
		Query:   bound,
	}
	for s := range outs {
		r := outs[s].res.Report
		reports[s] = r
		if s == 0 {
			rep.PlanLabel = r.PlanLabel
			res.Spec = outs[s].res.Spec
		}
		if r.TotalTime > rep.TotalTime {
			rep.TotalTime = r.TotalTime
		}
		if r.RAMHigh > rep.RAMHigh {
			rep.RAMHigh = r.RAMHigh
		}
		rep.Flash.PageReads += r.Flash.PageReads
		rep.Flash.PagesProgrammed += r.Flash.PagesProgrammed
		rep.Flash.BlockErases += r.Flash.BlockErases
		rep.Flash.BytesRead += r.Flash.BytesRead
		rep.Flash.BytesProgrammed += r.Flash.BytesProgrammed
		rep.Flash.ReadTime += r.Flash.ReadTime
		rep.Flash.ProgTime += r.Flash.ProgTime
		rep.Flash.EraseTime += r.Flash.EraseTime
		rep.BusBytes += r.BusBytes
		rep.BusMsgs += r.BusMsgs
	}
	res.ShardReports = reports

	var rows [][]value.Value
	var err error
	switch {
	case bound.Aggregated():
		rows, err = mergeAggregates(bound, outs)
	case bound.HasPostOps():
		rows = mergeCandidates(bound, outs)
	default:
		rows = mergeRoots(bound, outs)
	}
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	rep.ResultRows = len(rows)
	db.feedShardMetrics(rep)
	return res, nil
}

// feedShardMetrics folds a merged (or routed) shard report into the
// coordinator's registry, mirroring what DB.execute feeds on a single
// device. Children feed their own registries from their executions.
func (db *DB) feedShardMetrics(rep *stats.Report) {
	if m := db.metrics; m != nil {
		m.flashPageReads.Add(rep.Flash.PageReads)
		m.busBytes.Add(rep.BusBytes)
		m.ramHighWater.Observe(rep.RAMHigh)
	}
}

// runShard executes the query's physical pipeline on shard s and
// reduces the result to the form the coordinator merges: aggregation
// partials, top-K'd candidate rows, or plain rows with global roots.
func (db *DB) runShard(s int, sqlText string, params []value.Value, cfg *queryConfig, rootName, pkName string) (out shardOut) {
	ss := db.shards
	child := ss.children[s]
	ccq, _, err := child.compileCached(sqlText)
	if err != nil {
		out.err = err
		return
	}
	cbound, err := ccq.shape.BindParams(params)
	if err != nil {
		out.err = err
		return
	}
	local, err := ss.localizeQuery(s, cbound, rootName, pkName)
	if err != nil {
		out.err = err
		return
	}
	res, err := ccq.runBound(local, cloneCfg(cfg), true)
	if err != nil {
		out.err = err
		return
	}
	out.res = res

	// Map the shard-local root identifiers back to global ones, and
	// rewrite root-PK projection values in place (the physical rows'
	// value slices are freshly allocated per query). The remap must
	// happen before grouping: aggregates over the root key must see
	// global values.
	l2g := ss.localToGlobal[s]
	groots := make([]uint32, len(res.Roots))
	for i, lr := range res.Roots {
		if lr == 0 || int(lr) > len(l2g) {
			out.err = fmt.Errorf("core: local root %d outside the global root mapping (a cross-shard statement partially applied?)", lr)
			return
		}
		groots[i] = l2g[lr-1]
	}
	var pkProjs []int
	for j, c := range local.Projs {
		if strings.EqualFold(c.Table, rootName) && strings.EqualFold(c.Column, pkName) {
			pkProjs = append(pkProjs, j)
		}
	}
	if len(pkProjs) > 0 {
		for i, row := range res.Rows {
			for _, j := range pkProjs {
				row[j] = value.NewInt(int64(groots[i]))
			}
		}
	}

	switch {
	case local.Aggregated():
		out.groups, out.err = shardPartials(local, res.Rows, groots)
	case local.HasPostOps():
		out.rows = shardCandidates(local, res.Rows, groots)
	default:
		out.roots = groots
	}
	return
}

// shardPartials folds the shard's physical rows into per-group raw
// accumulator partials, stamped with the smallest contributing global
// root so the coordinator can reconstruct single-device group order.
func shardPartials(q *plan.Query, rows [][]value.Value, groots []uint32) ([]shardGroup, error) {
	g := exec.GetGrouper(q.GroupBy, aggOps(q))
	defer exec.PutGrouper(g)
	for i, row := range rows {
		if err := g.AddAt(row, int64(groots[i])); err != nil {
			return nil, err
		}
	}
	out := make([]shardGroup, g.Groups())
	for gi := range out {
		keys, accs, first := g.Partial(gi)
		// The key slice aliases pooled grouper storage; copy before Put.
		out[gi] = shardGroup{keys: append([]value.Value(nil), keys...), accs: accs, first: first}
	}
	return out, nil
}

// shardCandidates reduces a plain post-op query's physical rows to
// output-shaped candidates with a trailing global-root column, applying
// the per-shard pushdowns: DISTINCT always, and top-K (ORDER BY+LIMIT)
// or a plain LIMIT cap. Dropping rows here is safe: rows arrive in
// global root order within a shard, global dedupe keeps the
// earliest-root occurrence of a value, and the sorter breaks ties by
// arrival (= root) order — so any row cut locally has at least LIMIT
// globally-surviving rows ranked before it.
func shardCandidates(q *plan.Query, rows [][]value.Value, groots []uint32) [][]value.Value {
	width := len(q.Outputs)
	out := make([][]value.Value, len(rows))
	for i, br := range rows {
		row := make([]value.Value, width+1)
		for oi, o := range q.Outputs {
			row[oi] = br[o.Proj]
		}
		row[width] = value.NewInt(int64(groots[i]))
		out[i] = row
	}
	if q.Distinct {
		d := exec.GetDistinct(q.VisibleOuts)
		kept := out[:0]
		for _, r := range out {
			if !d.Seen(r) {
				kept = append(kept, r)
			}
		}
		exec.PutDistinct(d)
		out = kept
	}
	if q.HasLimit {
		switch {
		case len(q.OrderBy) > 0:
			if q.Limit > 0 && len(out) > q.Limit {
				keys := make([]exec.SortKey, len(q.OrderBy))
				for i, k := range q.OrderBy {
					keys[i] = exec.SortKey{Col: k.Out, Desc: k.Desc}
				}
				srt := exec.GetSorter(keys, q.Limit)
				for _, r := range out {
					srt.Push(r)
				}
				sorted := srt.Finish()
				kept := make([][]value.Value, len(sorted))
				copy(kept, sorted)
				exec.PutSorter(srt)
				out = kept
			}
		case len(out) > q.Limit:
			out = out[:q.Limit]
		}
	}
	return out
}

// mergeAggregates absorbs every shard's group partials into one merge
// grouper (identity key columns: the exported key tuples address
// themselves), reorders the groups by their first-seen global root to
// match single-device group creation order, and runs the shared
// finishing tail.
func mergeAggregates(q *plan.Query, outs []shardOut) ([][]value.Value, error) {
	if q.HasLimit && q.Limit == 0 {
		return nil, nil
	}
	idKeys := make([]int, len(q.GroupBy))
	for i := range idKeys {
		idKeys[i] = i
	}
	g := exec.GetGrouper(idKeys, aggOps(q))
	defer exec.PutGrouper(g)
	for _, so := range outs {
		for _, grp := range so.groups {
			if err := g.Absorb(grp.keys, grp.accs, grp.first); err != nil {
				return nil, err
			}
		}
	}
	// A global aggregate over an empty scatter still yields one row.
	if !q.Grouped && g.Groups() == 0 {
		g.AddEmptyGroup()
	}
	order := make([]int, g.Groups())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return g.FirstSeen(order[a]) < g.FirstSeen(order[b]) })
	rows, err := grouperRows(q, g, order)
	if err != nil {
		return nil, err
	}
	return finishTail(q, rows), nil
}

// mergeCandidates restores global root order over the concatenated
// per-shard candidates, strips the trailing root column and runs the
// shared finishing tail — identical tie-breaks to the single device.
func mergeCandidates(q *plan.Query, outs []shardOut) [][]value.Value {
	if q.HasLimit && q.Limit == 0 {
		return nil
	}
	width := len(q.Outputs)
	total := 0
	for _, so := range outs {
		total += len(so.rows)
	}
	all := make([][]value.Value, 0, total)
	for _, so := range outs {
		all = append(all, so.rows...)
	}
	sort.Slice(all, func(a, b int) bool { return all[a][width].Int() < all[b][width].Int() })
	for i := range all {
		all[i] = all[i][:width:width]
	}
	return finishTail(q, all)
}

// mergeRoots k-way-merges the per-shard plain result rows by global
// root identifier up to the limit. Per-shard rows are already in global
// root order (localToGlobal is strictly increasing), so a linear merge
// over the shard heads suffices.
func mergeRoots(q *plan.Query, outs []shardOut) [][]value.Value {
	limit := -1
	if q.HasLimit {
		limit = q.Limit
	}
	total := 0
	for _, so := range outs {
		total += len(so.roots)
	}
	if limit >= 0 && total > limit {
		total = limit
	}
	rows := make([][]value.Value, 0, total)
	idx := make([]int, len(outs))
	for limit < 0 || len(rows) < limit {
		best := -1
		var bestRoot uint32
		for s := range outs {
			if idx[s] >= len(outs[s].roots) {
				continue
			}
			if r := outs[s].roots[idx[s]]; best < 0 || r < bestRoot {
				best, bestRoot = s, r
			}
		}
		if best < 0 {
			break
		}
		rows = append(rows, outs[best].res.Rows[idx[best]])
		idx[best]++
	}
	return rows
}

// ---------------------------------------------------------------------------
// Root-key predicate localization.

// localizeQuery clones the bound query for shard s, rewriting every
// predicate on the root table's primary key from global to shard-local
// identifier space. Other predicates (dimension columns, hidden
// columns) pass through unchanged: dimension tables are replicated with
// identical identifiers on every shard. The clone leaves the shared
// compiled shape untouched; the cached predicate labels keep showing
// the global values, which is what a per-shard EXPLAIN should display.
func (ss *shardSet) localizeQuery(s int, q *plan.Query, rootName, pkName string) (*plan.Query, error) {
	needs := false
	for i := range q.Preds {
		if strings.EqualFold(q.Preds[i].Col.Table, rootName) && strings.EqualFold(q.Preds[i].Col.Column, pkName) {
			needs = true
			break
		}
	}
	if !needs {
		return q, nil
	}
	out := *q
	out.Preds = append([]plan.Pred(nil), q.Preds...)
	for i := range out.Preds {
		pr := &out.Preds[i]
		if !strings.EqualFold(pr.Col.Table, rootName) || !strings.EqualFold(pr.Col.Column, pkName) {
			continue
		}
		pr.P = ss.localizePred(s, pr.P)
	}
	return &out, nil
}

// localizePred maps one root-PK predicate into shard s's local key
// space, preserving the predicate's form and operator (the plan spec
// validates strategies against predicate count and shape, so values are
// rewritten, never dropped). The local keys owned by shard s appear in
// the same relative order as their globals, which makes every range
// operator translatable through the count of owned keys at or below the
// global bound. Non-Int values (impossible after bind-time coercion to
// the Int key column) pass through and fail in evaluation exactly as
// they would on a single device.
func (ss *shardSet) localizePred(s int, p pred.P) pred.P {
	l2g := ss.localToGlobal[s]
	// countLE returns how many of shard s's keys have a global ID <= g —
	// equivalently the largest local ID whose global is <= g.
	countLE := func(g int64) int64 {
		lo, hi := 0, len(l2g)
		for lo < hi {
			mid := (lo + hi) / 2
			if int64(l2g[mid]) <= g {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return int64(lo)
	}
	// localOf returns shard s's local ID for global g, or 0 when g is
	// out of range or owned by another shard (no local row matches; 0 is
	// below every dense identifier).
	localOf := func(g int64) int64 {
		if g >= 1 && g <= int64(len(ss.rootMap)) {
			if loc := ss.rootMap[g-1]; int(loc.shard) == s {
				return int64(loc.local)
			}
		}
		return 0
	}
	switch p.Form {
	case pred.FormCompare:
		if p.Val.Kind() != value.Int {
			return p
		}
		g := p.Val.Int()
		switch p.Op {
		case sql.OpEq, sql.OpNe:
			// Eq: the owner shard matches its local row, every other
			// shard matches nothing (local 0). Ne: the owner excludes
			// exactly that row; elsewhere Ne 0 matches all rows.
			p.Val = value.NewInt(localOf(g))
		case sql.OpLt:
			p.Val = value.NewInt(countLE(g-1) + 1)
		case sql.OpLe:
			p.Val = value.NewInt(countLE(g))
		case sql.OpGt:
			p.Val = value.NewInt(countLE(g))
		case sql.OpGe:
			p.Val = value.NewInt(countLE(g-1) + 1)
		}
	case pred.FormBetween:
		if p.Lo.Kind() != value.Int || p.Hi.Kind() != value.Int {
			return p
		}
		// An empty global range maps to an empty local range (lo > hi),
		// which evaluates to false like on a single device.
		p.Lo = value.NewInt(countLE(p.Lo.Int()-1) + 1)
		p.Hi = value.NewInt(countLE(p.Hi.Int()))
	case pred.FormIn:
		set := make([]value.Value, 0, len(p.Set))
		for _, v := range p.Set {
			if v.Kind() != value.Int {
				set = append(set, v)
				continue
			}
			if l := localOf(v.Int()); l != 0 {
				set = append(set, value.NewInt(l))
			}
		}
		p.Set = set
	}
	return p
}

// ---------------------------------------------------------------------------
// DML routing.

// insert routes a post-build INSERT. Dimension inserts broadcast to
// every shard (replicas stay identical); root inserts are validated
// globally, rewritten to shard-local dense keys and routed round-robin
// by global identifier, extending the mapping only after every shard
// applied. Caller holds the coordinator's device gate.
func (ss *shardSet) insert(db *DB, ins *sql.Insert) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()

	t, ok := db.sch.Table(ins.Table)
	if !ok {
		return fmt.Errorf("core: unknown table %s", ins.Table)
	}
	root := db.sch.Root()
	n := len(ss.children)

	if !strings.EqualFold(t.Name, root.Name) {
		// Replicated dimension: every child validates and applies the
		// identical statement against identical state, so it either
		// applies everywhere or fails on the first child.
		for s, c := range ss.children {
			c.mu.Lock()
			err := c.insertLocked(ins)
			c.mu.Unlock()
			if err != nil {
				return fmt.Errorf("core: shard %d: %w", s, err)
			}
		}
		ss.auditInsert(db, t, ins.Rows)
		return nil
	}

	// Root insert: coordinator-side validation of arity, coercion and
	// global key density, so the only failures after routing begins are
	// device-side ones (e.g. RAM budget), keeping the non-atomic window
	// small.
	pkIdx := t.PrimaryKeyIndex()
	coerced := make([][]value.Value, len(ins.Rows))
	for ri, row := range ins.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("core: %s expects %d values, got %d", t.Name, len(t.Columns), len(row))
		}
		out := make([]value.Value, len(row))
		for ci, v := range row {
			if v.IsParam() {
				return fmt.Errorf("core: INSERT into %s carries an unbound '?' placeholder; bind arguments first", t.Name)
			}
			cv, err := value.Coerce(v, t.Columns[ci].Type.Kind)
			if err != nil {
				return fmt.Errorf("core: %s.%s row %d: %w", t.Name, t.Columns[ci].Name, ri+1, err)
			}
			out[ci] = cv
		}
		want := int64(len(ss.rootMap)) + 1 + int64(ri)
		pkVal := out[pkIdx]
		if pkVal.Kind() != value.Int || pkVal.Int() != want {
			return fmt.Errorf("core: %s primary key must be dense: row %d needs key %d, got %s",
				t.Name, ri+1, want, pkVal)
		}
		coerced[ri] = out
	}

	// Group the rows per target shard with local dense keys.
	type routed struct {
		rows   [][]value.Value
		owners []int // index into coerced, for the mapping extension
	}
	perShard := make([]routed, n)
	locs := make([]shardLoc, len(coerced))
	for ri, row := range coerced {
		g := len(ss.rootMap) + ri // 0-based global index
		s := g % n
		local := len(ss.localToGlobal[s]) + len(perShard[s].rows) + 1
		sr := append([]value.Value(nil), row...)
		sr[pkIdx] = value.NewInt(int64(local))
		perShard[s].rows = append(perShard[s].rows, sr)
		perShard[s].owners = append(perShard[s].owners, ri)
		locs[ri] = shardLoc{shard: uint32(s), local: uint32(local)}
	}
	for s, c := range ss.children {
		if len(perShard[s].rows) == 0 {
			continue
		}
		sub := &sql.Insert{Table: ins.Table, Rows: perShard[s].rows}
		c.mu.Lock()
		err := c.insertLocked(sub)
		c.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: shard %d: %w", s, err)
		}
	}

	// Every shard applied: extend the global mapping in statement order.
	base := len(ss.rootMap)
	for ri := range coerced {
		ss.rootMap = append(ss.rootMap, locs[ri])
		ss.localToGlobal[locs[ri].shard] = append(ss.localToGlobal[locs[ri].shard], uint32(base+ri+1))
	}
	ss.auditInsert(db, t, coerced)
	return nil
}

// auditInsert adds inserted hidden string values to the coordinator's
// audit set (children maintain their own from their applied rows).
func (ss *shardSet) auditInsert(db *DB, t *schema.Table, rows [][]value.Value) {
	for _, row := range rows {
		for ci, c := range t.Columns {
			if !c.Hidden || c.Type.Kind != value.String || ci >= len(row) {
				continue
			}
			v, err := value.Coerce(row[ci], c.Type.Kind)
			if err != nil {
				continue
			}
			db.hiddenVals.Add(v)
		}
	}
}

// execDML routes a bound DELETE or UPDATE. Dimension DML broadcasts to
// every shard (identical replicas report identical counts; shard 0's is
// returned); root DML is localized per shard like a query predicate and
// the affected counts sum (every live root row lives on exactly one
// shard). Caller holds the coordinator's device gate.
func (ss *shardSet) execDML(db *DB, d *plan.DML) (int64, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()

	// Coordinator audit set: hidden string values written by UPDATE.
	for _, a := range d.Sets {
		c := d.Table.Columns[a.ColIdx]
		if c.Hidden && c.Type.Kind == value.String {
			db.hiddenVals.Add(a.Val)
		}
	}

	root := db.sch.Root()
	if !strings.EqualFold(d.Table.Name, root.Name) {
		var first int64
		for s, c := range ss.children {
			c.mu.Lock()
			cnt, err := c.execDMLLocked(d)
			c.mu.Unlock()
			if err != nil {
				return 0, fmt.Errorf("core: shard %d: %w", s, err)
			}
			if s == 0 {
				first = cnt
			}
		}
		return first, nil
	}

	pkName := root.PrimaryKey().Name
	var total int64
	for s, c := range ss.children {
		sd := *d
		sd.Preds = append([]plan.Pred(nil), d.Preds...)
		for i := range sd.Preds {
			pr := &sd.Preds[i]
			if strings.EqualFold(pr.Col.Table, root.Name) && strings.EqualFold(pr.Col.Column, pkName) {
				pr.P = ss.localizePred(s, pr.P)
			}
		}
		c.mu.Lock()
		cnt, err := c.execDMLLocked(&sd)
		c.mu.Unlock()
		if err != nil {
			return total, fmt.Errorf("core: shard %d: %w", s, err)
		}
		total += cnt
	}
	return total, nil
}

// nextID serves DB.NextID on a sharded database: the root's next global
// dense key, a dimension's next key from shard 0 (replicas agree).
// Caller holds the coordinator's device gate.
func (ss *shardSet) nextID(db *DB, table string) (uint32, error) {
	root := db.sch.Root()
	if strings.EqualFold(table, root.Name) {
		ss.mu.RLock()
		defer ss.mu.RUnlock()
		return uint32(len(ss.rootMap)) + 1, nil
	}
	return ss.children[0].NextID(table)
}

// deltaStats aggregates the per-shard delta state into the logical
// database view: root entries sum across shards, dimension entries are
// counted once (shard 0 stands for the identical replicas).
func (ss *shardSet) deltaStats(db *DB) []DeltaStats {
	root := db.sch.Root()
	merged := map[string]*DeltaStats{}
	for s, c := range ss.children {
		for _, d := range c.DeltaStats() {
			isRoot := strings.EqualFold(d.Table, root.Name)
			if !isRoot && s != 0 {
				continue
			}
			m := merged[d.Table]
			if m == nil {
				m = &DeltaStats{Table: d.Table}
				merged[d.Table] = m
			}
			m.Rows += d.Rows
			m.Tombstones += d.Tombstones
			m.DeviceB += d.DeviceB
			m.HostB += d.HostB
		}
	}
	out := make([]DeltaStats, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Table < out[j].Table })
	return out
}

// logicalEntries counts the logical delta size (rows plus tombstones,
// dimensions counted once) — the sharded analogue of delta.Entries()
// that drives auto-checkpointing.
func (ss *shardSet) logicalEntries(db *DB) int {
	total := 0
	for _, d := range ss.deltaStats(db) {
		total += d.Rows + d.Tombstones
	}
	return total
}

// ---------------------------------------------------------------------------
// CHECKPOINT.

// checkpoint runs CHECKPOINT over the shard set as a two-phase merge.
// Phase A prepares every dirty shard in parallel — a pure read pass
// (liveness, renumbering, extraction) that leaves each child untouched,
// so an error or a context cancellation anywhere abandons the whole
// checkpoint with every delta intact. Phase B rebuilds the global root
// mapping from the survivor lists and commits every shard in parallel:
// dirty shards rebuild into their spare flash half and flip their commit
// record; clean shards write a record-only commit, so all shard versions
// advance in lockstep and recovery can pick one global cut (shard
// versions never spread by more than the one a mid-commit crash tears).
//
// Each child renumbers its root survivors densely in ascending old-local
// order; walking the old global mapping in order and consuming each
// shard's survivor list with a cursor therefore assigns exactly the
// child's new local identifiers, and keeps localToGlobal strictly
// increasing. Caller holds the coordinator's device gate.
func (ss *shardSet) checkpoint(db *DB, ctx context.Context) (int64, error) {
	ss.mu.Lock()
	defer ss.mu.Unlock()

	absorbed := int64(ss.logicalEntries(db))
	if absorbed == 0 {
		return 0, nil
	}
	ckptStart := time.Now()
	root := db.sch.Root()
	n := len(ss.children)

	type ckptOut struct {
		pending   *ckptPending
		survivors []uint32 // old local root IDs that survived, ascending
		simStart  time.Duration
		span      time.Duration
		err       error
	}
	outs := make([]ckptOut, n)

	// Phase A: prepare in parallel. No device state changes yet.
	var wg sync.WaitGroup
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := ss.children[s]
			c.mu.Lock()
			defer c.mu.Unlock()
			outs[s].simStart = c.clock.Now()
			p, err := c.checkpointPrepareLocked(ctx)
			outs[s].pending, outs[s].err = p, err
			if p != nil {
				outs[s].survivors = p.oldIDs[root.Name]
			}
		}(s)
	}
	wg.Wait()
	for s := range outs {
		if outs[s].err != nil {
			return 0, fmt.Errorf("core: shard %d checkpoint: %w", s, outs[s].err)
		}
	}

	// A shard whose delta was empty has nothing to merge: its local space
	// is unchanged, i.e. every local row survives under its own
	// identifier (it still gets a record-only commit below).
	for s := range outs {
		if outs[s].survivors == nil {
			ident := make([]uint32, len(ss.localToGlobal[s]))
			for i := range ident {
				ident[i] = uint32(i + 1)
			}
			outs[s].survivors = ident
		}
	}

	// Rebuild the global mapping: new globals are assigned in old-global
	// order over the surviving rows.
	newMap := make([]shardLoc, 0, len(ss.rootMap))
	newL2G := make([][]uint32, n)
	cursor := make([]int, n)
	for _, loc := range ss.rootMap {
		s := int(loc.shard)
		sv := outs[s].survivors
		for cursor[s] < len(sv) && sv[cursor[s]] < loc.local {
			cursor[s]++
		}
		if cursor[s] >= len(sv) || sv[cursor[s]] != loc.local {
			continue // tombstoned (or cascade-dead): dropped by the merge
		}
		cursor[s]++
		newLocal := uint32(cursor[s]) // survivor rank = child's new dense ID
		newMap = append(newMap, shardLoc{shard: loc.shard, local: newLocal})
		newL2G[s] = append(newL2G[s], uint32(len(newMap)))
	}

	// Phase B: commit in parallel. Each child gets its new mapping slice
	// before writing the record, so the persisted manifest matches the
	// post-merge global order. A commit error latches that child fatal;
	// the mapping still installs — the surviving shards committed, and
	// the dead one fails every touching query with its terminal error.
	for s := 0; s < n; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c := ss.children[s]
			c.mu.Lock()
			defer c.mu.Unlock()
			c.rootGlobals = append([]uint32(nil), newL2G[s]...)
			if p := outs[s].pending; p != nil {
				outs[s].err = c.checkpointCommitLocked(p)
			} else {
				outs[s].err = c.recordOnlyCommitLocked()
			}
			outs[s].span = c.clock.Span(outs[s].simStart)
		}(s)
	}
	wg.Wait()

	ss.rootMap = newMap
	ss.localToGlobal = newL2G

	// Refresh the coordinator's global cardinalities: the root from the
	// rebuilt mapping, dimensions from shard 0's post-merge counts.
	c0 := ss.children[0]
	c0.mu.Lock()
	for name, cnt := range c0.rowCounts {
		if !strings.EqualFold(name, root.Name) {
			db.rowCounts[name] = cnt
		}
	}
	c0.mu.Unlock()
	db.rowCounts[root.Name] = len(newMap)

	var maxSpan time.Duration
	var firstErr error
	for s := range outs {
		if outs[s].err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: shard %d checkpoint: %w", s, outs[s].err)
		}
		if outs[s].span > maxSpan {
			maxSpan = outs[s].span
		}
	}

	db.checkpointsRun.Add(1)
	if m := db.metrics; m != nil {
		m.checkpoints.Inc()
		m.checkpointWall.Observe(time.Since(ckptStart).Nanoseconds())
		m.checkpointSim.Observe(int64(maxSpan))
		m.noteDelta(db)
	}
	if firstErr != nil {
		return 0, firstErr
	}
	return absorbed, nil
}

// ---------------------------------------------------------------------------
// Introspection.

// ShardCount reports how many device shards back this DB; 0 means the
// classic single-device engine.
func (db *DB) ShardCount() int {
	if db.shards == nil {
		return 0
	}
	return len(db.shards.children)
}

// ShardInfo summarizes one device shard for monitoring surfaces.
type ShardInfo struct {
	Shard           int
	RootRows        int              // live root rows mapped to this shard
	SimTime         time.Duration    // the shard clock's accumulated simulated time
	Storage         StorageBreakdown // the shard's flash footprint
	DeltaRows       int              // delta-resident row images on this shard
	DeltaTombstones int              // tombstones on this shard
}

// ShardInfos reports per-shard state (nil on single-device DBs).
func (db *DB) ShardInfos() []ShardInfo {
	ss := db.shards
	if ss == nil {
		return nil
	}
	ss.mu.RLock()
	counts := make([]int, len(ss.children))
	for i := range counts {
		counts[i] = len(ss.localToGlobal[i])
	}
	ss.mu.RUnlock()
	out := make([]ShardInfo, len(ss.children))
	for i, c := range ss.children {
		info := ShardInfo{Shard: i, RootRows: counts[i], Storage: c.Storage()}
		c.mu.Lock()
		info.SimTime = c.clock.Now()
		c.mu.Unlock()
		for _, d := range c.DeltaStats() {
			info.DeltaRows += d.Rows
			info.DeltaTombstones += d.Tombstones
		}
		out[i] = info
	}
	return out
}
