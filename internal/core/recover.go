package core

// Crash recovery. Snapshot captures what survives a crash in GhostDB's
// model: the device's flash contents (as verified images) plus the
// server-durable visible store and catalog. Recover rebuilds a working
// database from a snapshot alone, landing on exactly the newest fully
// committed version — the A/B commit records make the outcome binary:
// a CHECKPOINT whose record write completed is wholly visible, one cut
// short is wholly rolled back to the previous version. Uncommitted
// delta mutations are volatile by design; their loss is bounded by the
// deltalimit auto-checkpoint knob.

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/schema"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/value"
)

// shardState is one device's crash-surviving state: its flash image and
// the server-side visible columns of its recent committed versions.
type shardState struct {
	img storage.Image
	vis map[uint64]map[string]map[string][]value.Value
}

// Snapshot is a point-in-time capture of everything that survives a
// crash: per-device flash images, the server-durable visible column
// data, the catalog DDL, and the options the database ran with. Take
// one with DB.Snapshot, rebuild with Recover.
type Snapshot struct {
	opts   Options
	ddl    []string
	shards []shardState
}

// Snapshot captures the crash-surviving state of the database: flash
// images of every device (single or per shard) plus the server-side
// visible data and catalog. It works on a healthy database and — the
// point of it — on one whose device has died mid-operation
// (FatalError != nil): imaging reads the simulated flash array
// directly, the way a forensic reader would lift the NAND from a
// yanked device.
func (db *DB) Snapshot() (*Snapshot, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if !db.loaded {
		return nil, fmt.Errorf("core: snapshot before Build")
	}
	snap := &Snapshot{opts: db.opts, ddl: append([]string(nil), db.ddl...)}
	if db.shards != nil {
		ss := db.shards
		ss.mu.RLock()
		defer ss.mu.RUnlock()
		for _, c := range ss.children {
			c.mu.Lock()
			img, err := c.dev.Flash.Image()
			vis := cloneCommittedVis(c.committedVis)
			c.mu.Unlock()
			if err != nil {
				return nil, fmt.Errorf("core: snapshot: imaging shard: %w", err)
			}
			snap.shards = append(snap.shards, shardState{img: img, vis: vis})
		}
	} else {
		img, err := db.dev.Flash.Image()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot: imaging device: %w", err)
		}
		snap.shards = []shardState{{img: img, vis: cloneCommittedVis(db.committedVis)}}
	}
	return snap, nil
}

// cloneCommittedVis shallow-copies the version map; the per-version
// column data is immutable and shared.
func cloneCommittedVis(m map[uint64]map[string]map[string][]value.Value) map[uint64]map[string]map[string][]value.Value {
	out := make(map[uint64]map[string]map[string][]value.Value, len(m))
	for v, t := range m {
		out[v] = t
	}
	return out
}

// RecoverInfo reports what Recover landed on.
type RecoverInfo struct {
	// Version is the committed version the database recovered to — the
	// newest version fully committed on every device.
	Version uint64
	// ShardVersions holds each device's newest valid committed version
	// (one entry on a single-device database). A shard ahead of Version
	// committed during a global CHECKPOINT that didn't finish everywhere;
	// it is rolled back to Version.
	ShardVersions []uint64
	// RolledBack reports that the crash interrupted a commit: a record
	// slot was torn or a shard was ahead of the global cut, so some
	// checkpointed-but-uncommitted work was discarded.
	RolledBack bool
}

// Recover rebuilds a database from a crash snapshot. Per device it
// decodes both A/B commit-record slots, keeps the newest one that
// verifies end to end (magic, page checksums, payload CRC, slot
// parity), and takes the minimum across devices as the global cut; the
// hidden columns are decoded straight from the flash image under that
// version's manifest and the visible columns re-attached from the
// server-durable snapshot. The result is a fresh, healthy DB holding
// exactly the pre- or post-CHECKPOINT state — never a torn mix.
//
// The recovered DB inherits the snapshot's options minus the fault
// plan (the replacement device is presumed healthy); pass extra
// options to override — including WithShards to re-shard on the way
// back up, since recovery reassembles the global row order first.
func Recover(snap *Snapshot, extra ...Option) (*DB, *RecoverInfo, error) {
	start := time.Now()
	if snap == nil || len(snap.shards) == 0 {
		return nil, nil, fmt.Errorf("core: recover from an empty snapshot")
	}

	// Pick each device's newest valid commit record.
	type pick struct {
		recs [2]*commitRecord
		best *commitRecord
		torn bool
	}
	picks := make([]pick, len(snap.shards))
	info := &RecoverInfo{ShardVersions: make([]uint64, len(snap.shards))}
	vstar := uint64(0)
	for s, sh := range snap.shards {
		p := pick{}
		for slot := 0; slot < device.RecordBlocks; slot++ {
			rec, err := decodeCommitRecord(sh.img, slot)
			if err != nil {
				p.torn = true // a torn or corrupt record: the other slot decides
				continue
			}
			p.recs[slot] = rec
			if rec != nil && (p.best == nil || rec.Version > p.best.Version) {
				p.best = rec
			}
		}
		if p.best == nil {
			return nil, nil, fmt.Errorf("core: recover: shard %d has no valid commit record in either slot", s)
		}
		picks[s] = p
		info.ShardVersions[s] = p.best.Version
		if s == 0 || p.best.Version < vstar {
			vstar = p.best.Version
		}
	}
	info.Version = vstar
	for s := range picks {
		if picks[s].torn || picks[s].best.Version > vstar {
			info.RolledBack = true
		}
	}

	// Resolve each shard to its record at the global cut. A shard ahead
	// of the cut still holds the cut's record in the other slot — commit
	// of version v+1 never touches version v's record or data half.
	recs := make([]*commitRecord, len(snap.shards))
	for s := range picks {
		rec := picks[s].best
		if rec.Version != vstar {
			rec = picks[s].recs[device.RecordBlock(vstar)]
			if rec == nil || rec.Version != vstar {
				return nil, nil, fmt.Errorf("core: recover: shard %d cannot roll back to version %d (record lost)", s, vstar)
			}
		}
		recs[s] = rec
	}

	// Build the empty replacement database and replay the catalog.
	opts := snap.opts
	opts.FaultPlan = nil
	for _, o := range extra {
		o(&opts)
	}
	ndb, err := openResolved(opts)
	if err != nil {
		return nil, nil, err
	}
	for _, ddl := range snap.ddl {
		if err := ndb.ExecDDL(ddl); err != nil {
			return nil, nil, fmt.Errorf("core: recover: replaying DDL: %w", err)
		}
	}

	// Decode every shard's committed columns from its image, then
	// reassemble the global row order and bulk-load the new database.
	// Freeze resolves the foreign-key tree (idempotent; build re-checks).
	if err := ndb.sch.Freeze(); err != nil {
		return nil, nil, fmt.Errorf("core: recover: %w", err)
	}
	cols, err := assembleRecovered(ndb.sch, snap, recs, vstar)
	if err != nil {
		return nil, nil, err
	}
	ndb.mu.Lock()
	err = ndb.build(cols)
	ndb.mu.Unlock()
	if err != nil {
		return nil, nil, fmt.Errorf("core: recover: rebuilding: %w", err)
	}
	if m := ndb.metrics; m != nil {
		m.recoveries.Inc()
		m.recoveryWall.Observe(time.Since(start).Nanoseconds())
	}
	return ndb, info, nil
}

// assembleRecovered turns per-shard flash images into one global
// columnar dataset: dimension tables from shard 0 (they are replicated
// bit-identically), the root table stitched from every shard through
// the persisted local->global mappings, visible columns re-attached
// from the server-side stash.
func assembleRecovered(sch *schema.Schema, snap *Snapshot, recs []*commitRecord, version uint64) (map[string][][]value.Value, error) {
	root := sch.Root()
	if root == nil {
		return nil, fmt.Errorf("core: recover: schema has no root table")
	}

	// Per-shard decode of the root table plus its global mapping.
	type shardRoot struct {
		cols [][]value.Value
		l2g  []uint32
	}
	roots := make([]shardRoot, len(recs))
	globalN := 0
	for s := range recs {
		tcols, rows, err := decodeTableCols(sch, root, snap.shards[s], recs[s], version)
		if err != nil {
			return nil, fmt.Errorf("core: recover: shard %d %s: %w", s, root.Name, err)
		}
		var l2g []uint32
		if len(recs) == 1 && recs[s].RootCount == 0 {
			// Single-device databases persist no mapping: local == global.
			l2g = make([]uint32, rows)
			for i := range l2g {
				l2g[i] = uint32(i + 1)
			}
		} else {
			l2g, err = decodeRootGlobals(snap.shards[s].img, recs[s].RootGlobals.extent(), recs[s].RootCount)
			if err != nil {
				return nil, fmt.Errorf("core: recover: shard %d root mapping: %w", s, err)
			}
			if len(l2g) != rows {
				return nil, fmt.Errorf("core: recover: shard %d root mapping has %d entries for %d rows", s, len(l2g), rows)
			}
		}
		roots[s] = shardRoot{cols: tcols, l2g: l2g}
		globalN += rows
	}

	// Stitch the root back together in global order.
	gcols := make([][]value.Value, len(root.Columns))
	for ci := range gcols {
		gcols[ci] = make([]value.Value, globalN)
	}
	seen := make([]bool, globalN)
	pkIdx := root.PrimaryKeyIndex()
	for s := range roots {
		for li, g := range roots[s].l2g {
			if g < 1 || int(g) > globalN {
				return nil, fmt.Errorf("core: recover: shard %d maps local %d to global %d outside 1..%d", s, li+1, g, globalN)
			}
			if seen[g-1] {
				return nil, fmt.Errorf("core: recover: global root %d claimed by two shards", g)
			}
			seen[g-1] = true
			for ci := range root.Columns {
				if ci == pkIdx {
					gcols[ci][g-1] = value.NewInt(int64(g))
				} else {
					gcols[ci][g-1] = roots[s].cols[ci][li]
				}
			}
		}
	}
	for g := range seen {
		if !seen[g] {
			return nil, fmt.Errorf("core: recover: no shard owns global root %d", g+1)
		}
	}

	out := map[string][][]value.Value{root.Name: gcols}
	for _, t := range sch.Tables() {
		if t.Name == root.Name {
			continue
		}
		tcols, _, err := decodeTableCols(sch, t, snap.shards[0], recs[0], version)
		if err != nil {
			return nil, fmt.Errorf("core: recover: %s: %w", t.Name, err)
		}
		out[t.Name] = tcols
	}
	return out, nil
}

// decodeTableCols materializes one table's committed columns for one
// shard: hidden columns from the flash image under the manifest's
// extents (every page checksum-verified), primary keys regenerated
// dense, visible columns from the server-side stash.
func decodeTableCols(sch *schema.Schema, t *schema.Table, sh shardState, rec *commitRecord, version uint64) ([][]value.Value, int, error) {
	var rt *recordTable
	for i := range rec.Tables {
		if strings.EqualFold(rec.Tables[i].Name, t.Name) {
			rt = &rec.Tables[i]
			break
		}
	}
	if rt == nil {
		return nil, 0, fmt.Errorf("no manifest entry for table")
	}
	hidCols := map[string]*recordCol{}
	for i := range rt.Cols {
		hidCols[strings.ToLower(rt.Cols[i].Name)] = &rt.Cols[i]
	}
	vis := sh.vis[version][strings.ToLower(t.Name)]

	rows := rt.Rows
	out := make([][]value.Value, len(t.Columns))
	for ci, c := range t.Columns {
		switch {
		case c.PrimaryKey:
			vals := make([]value.Value, rows)
			for i := range vals {
				vals[i] = value.NewInt(int64(i + 1))
			}
			out[ci] = vals
		case c.Hidden:
			rc, ok := hidCols[strings.ToLower(c.Name)]
			if !ok {
				return nil, 0, fmt.Errorf("column %s missing from the manifest", c.Name)
			}
			var vals []value.Value
			var err error
			if rc.Var {
				if rc.Data == nil {
					return nil, 0, fmt.Errorf("column %s: manifest lacks the heap extent", c.Name)
				}
				vals, err = decodeVarColumn(sh.img, rc.Off.extent(), rc.Data.extent(), rows)
			} else {
				vals, err = decodeFixedColumn(sh.img, rc.Off.extent(), c.Type.Kind, rows)
			}
			if err != nil {
				return nil, 0, fmt.Errorf("column %s: %w", c.Name, err)
			}
			out[ci] = vals
		default:
			vals, ok := vis[strings.ToLower(c.Name)]
			if !ok {
				return nil, 0, fmt.Errorf("visible column %s missing from the version %d stash", c.Name, version)
			}
			if len(vals) != rows {
				return nil, 0, fmt.Errorf("visible column %s has %d values for %d rows", c.Name, len(vals), rows)
			}
			out[ci] = vals
		}
	}
	return out, rows, nil
}
