package core

// Host-side persistence for file-backed databases. The flash image alone
// is not enough to reopen a GhostDB: the paper's model keeps the visible
// (non-hidden) column data and the catalog on the untrusted server, with
// only hidden data and indexes on the device. A file-backed database
// therefore pairs the device directory with a JSON sidecar holding the
// DDL and the visible columns of the recoverable committed versions —
// the exact state Snapshot carries in memory — refreshed atomically at
// every commit point. OpenPath reads the sidecar plus the on-disk flash
// image and lands on the newest fully committed version, exactly like
// Recover over an in-memory snapshot.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/storage/filedev"
	"github.com/ghostdb/ghostdb/internal/value"
)

// sidecarName is the sidecar's filename inside a device directory.
const sidecarName = "meta.json"

// sidecarDoc is the JSON document persisted next to a file-backed
// device: catalog DDL plus the server-durable visible columns of the
// committed versions still recoverable from the A/B record slots.
type sidecarDoc struct {
	Version uint64          `json:"version"`
	DDL     []string        `json:"ddl"`
	Commits []sidecarCommit `json:"commits"`
}

// sidecarCommit is one committed version's visible column data.
type sidecarCommit struct {
	Version uint64         `json:"v"`
	Tables  []sidecarTable `json:"tables"`
}

type sidecarTable struct {
	Name string       `json:"name"`
	Cols []sidecarCol `json:"cols,omitempty"`
}

type sidecarCol struct {
	Name string `json:"name"`
	Rows int    `json:"rows"`
	// Data is the column's values in the canonical value encoding,
	// concatenated (JSON base64s it).
	Data []byte `json:"data"`
}

// persistSidecar atomically rewrites the sidecar of a file-backed
// database from the current committed state. A no-op on the simulated
// backend (and on a sharded coordinator, whose backend is simulated).
// Caller holds the device gate.
func (db *DB) persistSidecar() error {
	if !db.opts.Backend.IsFile() {
		return nil
	}
	doc := sidecarDoc{Version: db.version, DDL: db.ddl}
	versions := make([]uint64, 0, len(db.committedVis))
	for v := range db.committedVis {
		versions = append(versions, v)
	}
	sort.Slice(versions, func(i, j int) bool { return versions[i] < versions[j] })
	for _, v := range versions {
		commit := sidecarCommit{Version: v}
		tables := make([]string, 0, len(db.committedVis[v]))
		for t := range db.committedVis[v] {
			tables = append(tables, t)
		}
		sort.Strings(tables)
		for _, t := range tables {
			st := sidecarTable{Name: t}
			cols := make([]string, 0, len(db.committedVis[v][t]))
			for c := range db.committedVis[v][t] {
				cols = append(cols, c)
			}
			sort.Strings(cols)
			for _, c := range cols {
				vals := db.committedVis[v][t][c]
				var data []byte
				for _, val := range vals {
					data = val.Append(data)
				}
				st.Cols = append(st.Cols, sidecarCol{Name: c, Rows: len(vals), Data: data})
			}
			commit.Tables = append(commit.Tables, st)
		}
		doc.Commits = append(doc.Commits, commit)
	}
	blob, err := json.Marshal(doc)
	if err != nil {
		return err
	}
	return writeAtomic(filepath.Join(db.opts.Backend.Path, sidecarName), blob, db.opts.Backend.Fsync)
}

// writeAtomic replaces path via a temp-file-and-rename, fsyncing the
// temp file first when durable is set so the rename never exposes a
// partially written sidecar.
func writeAtomic(path string, blob []byte, durable bool) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(blob); err != nil {
		f.Close()
		return err
	}
	if durable {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// readSidecar loads and decodes one device directory's sidecar.
func readSidecar(dir string) (*sidecarDoc, error) {
	raw, err := os.ReadFile(filepath.Join(dir, sidecarName))
	if err != nil {
		return nil, fmt.Errorf("core: reading sidecar: %w", err)
	}
	var doc sidecarDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("core: corrupt sidecar %s: %w", filepath.Join(dir, sidecarName), err)
	}
	return &doc, nil
}

// visMap decodes the sidecar's committed visible columns back into the
// engine's version -> table -> column representation.
func (d *sidecarDoc) visMap() (map[uint64]map[string]map[string][]value.Value, error) {
	out := make(map[uint64]map[string]map[string][]value.Value, len(d.Commits))
	for _, commit := range d.Commits {
		tm := make(map[string]map[string][]value.Value, len(commit.Tables))
		for _, t := range commit.Tables {
			cm := make(map[string][]value.Value, len(t.Cols))
			for _, c := range t.Cols {
				vals := make([]value.Value, 0, c.Rows)
				rest := c.Data
				for i := 0; i < c.Rows; i++ {
					v, n, err := value.Decode(rest)
					if err != nil {
						return nil, fmt.Errorf("core: sidecar column %s.%s row %d: %w", t.Name, c.Name, i, err)
					}
					vals = append(vals, v)
					rest = rest[n:]
				}
				if len(rest) != 0 {
					return nil, fmt.Errorf("core: sidecar column %s.%s has %d trailing bytes", t.Name, c.Name, len(rest))
				}
				cm[c.Name] = vals
			}
			tm[t.Name] = cm
		}
		out[commit.Version] = tm
	}
	return out, nil
}

// PathHoldsDatabase reports whether dir holds a file-backed GhostDB
// (single-device or sharded) that OpenPath can reopen.
func PathHoldsDatabase(dir string) bool {
	return filedev.Exists(dir) || filedev.Exists(shardPath(dir, 0))
}

// OpenPath reopens a file-backed database from its on-disk state: the
// device directory's flash image (or the shardN subdirectories of a
// sharded one) plus the sidecar's catalog and visible columns. It lands
// on the newest version fully committed across all devices, exactly as
// Recover does from an in-memory snapshot — a process kill mid-commit
// rolls back to the previous committed version; uncommitted delta
// mutations are lost by design.
//
// The options parameterize the reopened engine (profile, batch size,
// shard count must match the on-disk layout if given); the backend is
// forced to the file backend at dir. Contrast Open with WithBackend,
// which CREATES a database at the path, wiping previous contents.
func OpenPath(dir string, options ...Option) (*DB, *RecoverInfo, error) {
	opts := defaultOptions()
	for _, o := range options {
		o(&opts)
	}
	var dirs []string
	switch {
	case filedev.Exists(dir):
		dirs = []string{dir}
	case filedev.Exists(shardPath(dir, 0)):
		for i := 0; filedev.Exists(shardPath(dir, i)); i++ {
			dirs = append(dirs, shardPath(dir, i))
		}
	default:
		return nil, nil, fmt.Errorf("core: no file-backed database at %s", dir)
	}
	if len(dirs) > 1 {
		if opts.Shards > 1 && opts.Shards != len(dirs) {
			return nil, nil, fmt.Errorf("core: %s holds %d shards, options ask for %d", dir, len(dirs), opts.Shards)
		}
		opts.Shards = len(dirs)
	} else if opts.Shards > 1 {
		return nil, nil, fmt.Errorf("core: %s holds a single-device database, options ask for %d shards", dir, opts.Shards)
	}
	opts.Backend.Kind = storage.KindFile
	opts.Backend.Path = dir

	snap := &Snapshot{opts: opts}
	for i, d := range dirs {
		doc, err := readSidecar(d)
		if err != nil {
			return nil, nil, err
		}
		if i == 0 {
			snap.ddl = doc.DDL
		}
		vis, err := doc.visMap()
		if err != nil {
			return nil, nil, err
		}
		// Lift the flash image into memory before Recover rebuilds (and
		// wipes) the directory. The read pass never writes, so fsync off.
		fd, err := filedev.Open(d, opts.Profile.Flash, false)
		if err != nil {
			return nil, nil, err
		}
		img, err := fd.Image()
		fd.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("core: imaging %s: %w", d, err)
		}
		snap.shards = append(snap.shards, shardState{img: img, vis: vis})
	}
	return Recover(snap)
}
