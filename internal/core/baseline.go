package core

import (
	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/climbing"
)

// BaselineEngine exposes the loaded database to the baseline join
// algorithms (experiment E4): they run on the same device, hidden store
// and visible store, but without Subtree Key Tables or transitive
// climbing lists.
//
// The engine drives the shared device, clock and RAM arena directly,
// outside the device gate, so — unlike DB.Query — it is NOT safe to run
// concurrently with queries or sessions on this DB. It is a
// single-threaded experiment harness: load the database, then run the
// baselines from one goroutine.
func (db *DB) BaselineEngine() *baseline.Engine {
	return &baseline.Engine{
		Dev:  db.dev,
		Env:  db.env,
		Sch:  db.sch,
		Hid:  db.hid,
		Vis:  db.vis,
		Rows: db.rowCounts,
		Translator: func(table string) (*climbing.Index, error) {
			db.mu.Lock()
			defer db.mu.Unlock()
			return db.translator(table)
		},
		ValueIndex: func(table, column string) (*climbing.Index, bool) {
			return db.Index(table, column)
		},
	}
}
