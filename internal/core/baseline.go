package core

import (
	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/climbing"
)

// BaselineEngine exposes the loaded database to the baseline join
// algorithms (experiment E4): they run on the same device, hidden store
// and visible store, but without Subtree Key Tables or transitive
// climbing lists.
func (db *DB) BaselineEngine() *baseline.Engine {
	return &baseline.Engine{
		Dev:  db.dev,
		Env:  db.env,
		Sch:  db.sch,
		Hid:  db.hid,
		Vis:  db.vis,
		Rows: db.rowCounts,
		Translator: func(table string) (*climbing.Index, error) {
			return db.translator(table)
		},
		ValueIndex: func(table, column string) (*climbing.Index, bool) {
			return db.Index(table, column)
		},
	}
}
