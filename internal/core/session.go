package core

import (
	"context"
	"errors"
	"sync"
	"time"

	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// ErrSessionClosed is returned by operations on a closed session.
var ErrSessionClosed = errors.New("core: session is closed")

// Session is one logical client of a shared DB — the unit the
// database/sql driver hands out as a pooled connection. Many sessions
// may be open at once, each on its own goroutine: host-side work
// (parsing, binding) runs concurrently, while device execution
// serializes on the DB's device gate, exactly as a hardware token
// serializes its USB command stream.
//
// A Session carries per-session execution state: the number of queries
// it ran, the simulated device time those queries consumed, and the
// last execution report. A Session is itself safe for concurrent use.
type Session struct {
	db *DB
	id int

	// metrics is the session-scoped registry (nil when the DB's metrics
	// are disabled): the same metric names as the DB registry, counting
	// only this session's traffic.
	metrics *engineMetrics

	mu          sync.Mutex
	closed      bool
	queries     int64
	deviceTime  time.Duration
	lastReport  *stats.Report
	cacheHits   int64 // plan-cache hits on this session's queries
	cacheMisses int64

	// lastSQL/lastCQ memoize the session's most recent compilation, so a
	// session re-issuing the same text skips even the shared cache's key
	// normalization. Guarded by mu.
	lastSQL string
	lastCQ  *CompiledQuery
}

// NewSession opens a session on the database.
func (db *DB) NewSession() (*Session, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	db.nextSession++
	db.sessions++
	s := &Session{db: db, id: db.nextSession}
	if db.metrics != nil {
		s.metrics = newEngineMetrics()
	}
	return s, nil
}

// OpenSessions reports the number of sessions currently open.
func (db *DB) OpenSessions() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.sessions
}

// ID is the session's unique identifier within its DB.
func (s *Session) ID() int { return s.id }

// DB returns the underlying shared database.
func (s *Session) DB() *DB { return s.db }

// Close releases the session. Closing a session does not close the DB;
// in-flight queries on other sessions are unaffected. Close is
// idempotent.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.db.mu.Lock()
	s.db.sessions--
	s.db.mu.Unlock()
	return nil
}

// check returns an error when the session (or its DB) cannot serve.
func (s *Session) check() error {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return ErrSessionClosed
	}
	return nil
}

// recordCache folds one plan-cache lookup into the session statistics.
func (s *Session) recordCache(hit bool) {
	if m := s.metrics; m != nil {
		if hit {
			m.planCacheHits.Inc()
		} else {
			m.planCacheMisses.Inc()
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if hit {
		s.cacheHits++
	} else {
		s.cacheMisses++
	}
}

// record folds one finished query into the session statistics.
func (s *Session) record(rep *stats.Report) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries++
	if rep != nil {
		s.deviceTime += rep.TotalTime
		s.lastReport = rep
	}
}

// Ping verifies that both the session and its DB are open.
func (s *Session) Ping() error {
	if err := s.check(); err != nil {
		return err
	}
	s.db.mu.Lock()
	defer s.db.mu.Unlock()
	if s.db.closed {
		return ErrClosed
	}
	return nil
}

// Stage applies CREATE TABLE / INSERT statements without finalizing the
// bulk load (see DB.Stage).
func (s *Session) Stage(script string) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.db.Stage(script)
}

// StageStatements applies already-parsed CREATE TABLE / INSERT
// statements without finalizing the bulk load (see DB.StageStatements).
func (s *Session) StageStatements(stmts []sql.Statement) error {
	if err := s.check(); err != nil {
		return err
	}
	return s.db.StageStatements(stmts)
}

// EnsureBuilt finalizes staged data if needed (see DB.EnsureBuilt).
func (s *Session) EnsureBuilt() error {
	if err := s.check(); err != nil {
		return err
	}
	return s.db.EnsureBuilt()
}

// Prepare parses and binds a SELECT (host-side; runs concurrently).
func (s *Session) Prepare(sqlText string) (*plan.Query, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	return s.db.Prepare(sqlText)
}

// Compile parses, binds and plan-enumerates a SELECT through the DB's
// shared plan cache: sessions issuing the same query shape share one
// CompiledQuery. The hit/miss is charged to this session's counters.
func (s *Session) Compile(sqlText string) (*CompiledQuery, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	cq, hit, err := s.db.compileCached(sqlText)
	if err != nil {
		return nil, err
	}
	s.recordCache(hit)
	return cq, nil
}

// Query compiles (through the shared plan cache) and executes a SELECT
// through the shared device gate. EXPLAIN and EXPLAIN ANALYZE prefixes
// are intercepted and answered with a rendered plan (see DB.Explain and
// DB.ExplainAnalyze).
func (s *Session) Query(sqlText string, opts ...QueryOption) (*Result, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	if isExplain(sqlText) {
		return s.db.explainQuery(sqlText, append(opts, withSession(s))...)
	}
	// The memo only applies while the shared cache is enabled: with
	// plancache=0 every query must recompile, as documented.
	memoOK := s.db.planCache.enabled()
	var cq *CompiledQuery
	if memoOK {
		s.mu.Lock()
		if s.lastSQL == sqlText {
			cq = s.lastCQ
		}
		s.mu.Unlock()
	}
	if cq == nil {
		var hit bool
		var err error
		cq, hit, err = s.db.compileCached(sqlText)
		if err != nil {
			return nil, err
		}
		if memoOK {
			s.mu.Lock()
			s.lastSQL, s.lastCQ = sqlText, cq
			s.mu.Unlock()
		}
		s.recordCache(hit)
	} else {
		// The memo hit short-circuits the shared cache lookup; credit it
		// on the shared counters too so DB-level stats stay a superset
		// of per-session stats.
		s.db.planCache.noteHit()
		if m := s.db.metrics; m != nil {
			m.planCacheHits.Inc()
		}
		s.recordCache(true)
	}
	res, err := cq.Run(nil, append(opts, withSession(s))...)
	if err != nil {
		return nil, err
	}
	s.record(res.Report)
	return res, nil
}

// QueryCompiled binds params into a compiled query and executes it,
// folding the report into the session statistics.
func (s *Session) QueryCompiled(cq *CompiledQuery, params []value.Value, opts ...QueryOption) (*Result, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	res, err := cq.Run(params, append(opts, withSession(s))...)
	if err != nil {
		return nil, err
	}
	s.record(res.Report)
	return res, nil
}

// Exec parses and executes a script of CREATE TABLE / INSERT / DELETE /
// UPDATE / CHECKPOINT statements (see DB.Exec), returning the number of
// rows affected.
func (s *Session) Exec(sqlText string) (int64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return s.db.Exec(sqlText)
}

// ExecStatements executes already-parsed statements (see
// DB.ExecStatements). The database/sql driver routes ExecContext through
// it so prepared scripts skip the re-parse.
func (s *Session) ExecStatements(stmts []sql.Statement) (int64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return s.db.ExecStatements(stmts)
}

// ExecStatementsContext is ExecStatements under a context (see
// DB.ExecStatementsContext): any CHECKPOINT it triggers checks ctx
// during its read phase and aborts cleanly with the delta intact.
func (s *Session) ExecStatementsContext(ctx context.Context, stmts []sql.Statement) (int64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return s.db.ExecStatementsContext(ctx, stmts)
}

// CompileDML parses and binds a DELETE or UPDATE through the shared plan
// cache; sessions issuing the same statement shape share one
// CompiledDML. The hit/miss is charged to this session's counters.
func (s *Session) CompileDML(sqlText string) (*CompiledDML, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	cd, hit, err := s.db.compileDMLCached(sqlText)
	if err != nil {
		return nil, err
	}
	s.recordCache(hit)
	return cd, nil
}

// ExecCompiled binds params into a compiled DML and executes it.
func (s *Session) ExecCompiled(cd *CompiledDML, params []value.Value) (int64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return cd.Exec(params)
}

// Checkpoint merges the live-DML delta into fresh flash segments (see
// DB.Checkpoint).
func (s *Session) Checkpoint() (int64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return s.db.Checkpoint()
}

// CheckpointContext is Checkpoint under a context (see
// DB.CheckpointContext).
func (s *Session) CheckpointContext(ctx context.Context) (int64, error) {
	if err := s.check(); err != nil {
		return 0, err
	}
	return s.db.CheckpointContext(ctx)
}

// QueryWithPlan executes a prepared query under an explicit plan.
func (s *Session) QueryWithPlan(q *plan.Query, spec plan.Spec) (*Result, error) {
	if err := s.check(); err != nil {
		return nil, err
	}
	res, err := s.db.QueryWithPlan(q, spec, withSession(s))
	if err != nil {
		return nil, err
	}
	s.record(res.Report)
	return res, nil
}

// SessionStats is a snapshot of one session's execution state.
type SessionStats struct {
	ID         int
	Queries    int64            // queries this session completed
	DeviceTime time.Duration    // simulated device time they consumed
	LastReport *stats.Report    // report of the most recent query, if any
	PlanCache  stats.CacheStats // this session's share of plan-cache traffic
}

// Stats snapshots the session's counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{
		ID:         s.id,
		Queries:    s.queries,
		DeviceTime: s.deviceTime,
		LastReport: s.lastReport,
		PlanCache:  stats.CacheStats{Hits: s.cacheHits, Misses: s.cacheMisses},
	}
}
