package core

import (
	"testing"

	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/value"
)

// TestAggregateAgainstOracle runs hand-picked aggregate / ordering /
// distinct queries over the tiny dataset and compares the engine
// against the oracle exactly (columns and row order included).
func TestAggregateAgainstOracle(t *testing.T) {
	db, orc, _ := loadTiny(t)
	queries := []string{
		"SELECT COUNT(*) FROM Prescription",
		"SELECT COUNT(*), SUM(Quantity), MIN(Quantity), MAX(Quantity), AVG(Quantity) FROM Prescription",
		"SELECT Country, COUNT(*) FROM Doctor GROUP BY Country",
		"SELECT Speciality, COUNT(*) FROM Doctor GROUP BY Speciality ORDER BY COUNT(*) DESC, Speciality",
		"SELECT Doctor.Country, COUNT(*) FROM Doctor, Visit, Prescription WHERE Prescription.Quantity >= 2 GROUP BY Doctor.Country",
		"SELECT Doctor.Country, SUM(Prescription.Quantity) FROM Doctor, Visit, Prescription GROUP BY Doctor.Country HAVING COUNT(*) > 3",
		"SELECT Type, MAX(Quantity) FROM Medicine, Prescription GROUP BY Type ORDER BY 2 DESC LIMIT 3",
		"SELECT DISTINCT Country FROM Doctor",
		"SELECT DISTINCT Speciality, Country FROM Doctor ORDER BY Country DESC, Speciality",
		"SELECT PatID, Age FROM Patient ORDER BY Age DESC, PatID LIMIT 5",
		"SELECT Age FROM Patient ORDER BY Age",
		"SELECT Purpose FROM Visit WHERE Date >= '2006-01-01' ORDER BY Date DESC LIMIT 4",
		"SELECT COUNT(*) FROM Doctor WHERE Country = 'France'",
		"SELECT Country, COUNT(*) FROM Doctor WHERE Speciality = 'Cardiology' GROUP BY Country",
		"SELECT MIN(Date), MAX(Date) FROM Visit",
		"SELECT Speciality FROM Doctor GROUP BY Speciality",
		"SELECT COUNT(*) FROM Doctor HAVING COUNT(*) > 10000",
	}
	for _, q := range queries {
		checkAgainstOracle(t, db, orc, q)
	}
}

// TestAggregateEveryPlan runs an aggregate join query under every
// enumerated plan: the post-operators must not depend on the strategy.
func TestAggregateEveryPlan(t *testing.T) {
	db, orc, _ := loadTiny(t)
	sqlText := "SELECT Doctor.Country, COUNT(*), SUM(Prescription.Quantity) FROM Doctor, Visit, Prescription WHERE Doctor.Speciality = 'Cardiology' AND Prescription.Quantity >= 2 GROUP BY Doctor.Country ORDER BY COUNT(*) DESC, Doctor.Country"
	q, err := db.Prepare(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	_, want, err := orc.Query(sqlText)
	if err != nil {
		t.Fatal(err)
	}
	for _, spec := range db.Plans(q) {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Describe(q), err)
		}
		if !sameRows(res.Rows, want) {
			t.Fatalf("%s: %d rows, oracle %d", spec.Describe(q), len(res.Rows), len(want))
		}
	}
}

// TestAggregateParamsAndPlanCache proves compile-once/bind-many works
// for parameterized aggregate shapes, with '?' placeholders in WHERE
// and HAVING, through the shared plan cache.
func TestAggregateParamsAndPlanCache(t *testing.T) {
	db, orc, _ := loadTiny(t)
	shape := "SELECT Doctor.Country, COUNT(*) FROM Doctor, Visit, Prescription WHERE Prescription.Quantity >= ? GROUP BY Doctor.Country HAVING COUNT(*) > ? ORDER BY COUNT(*) DESC, Doctor.Country"
	cq, err := db.Compile(shape)
	if err != nil {
		t.Fatal(err)
	}
	if cq.NumParams() != 2 {
		t.Fatalf("NumParams = %d, want 2", cq.NumParams())
	}
	for _, args := range [][2]int64{{1, 0}, {2, 1}, {3, 2}} {
		res, err := cq.Run([]value.Value{value.NewInt(args[0]), value.NewInt(args[1])})
		if err != nil {
			t.Fatal(err)
		}
		concrete := "SELECT Doctor.Country, COUNT(*) FROM Doctor, Visit, Prescription WHERE Prescription.Quantity >= " +
			value.NewInt(args[0]).String() + " GROUP BY Doctor.Country HAVING COUNT(*) > " +
			value.NewInt(args[1]).String() + " ORDER BY COUNT(*) DESC, Doctor.Country"
		_, want, err := orc.Query(concrete)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(res.Rows, want) {
			t.Fatalf("args %v: %d rows, oracle %d", args, len(res.Rows), len(want))
		}
	}
	// The shape must hit the shared plan cache on recompilation.
	before := db.PlanCacheStats()
	if _, err := db.Query("SELECT Doctor.Country, COUNT(*) FROM Doctor, Visit, Prescription WHERE Prescription.Quantity >= 2 GROUP BY Doctor.Country HAVING COUNT(*) > 1 ORDER BY COUNT(*) DESC, Doctor.Country"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT Doctor.Country, COUNT(*) FROM Doctor, Visit, Prescription WHERE Prescription.Quantity >= 2 GROUP BY Doctor.Country HAVING COUNT(*) > 1 ORDER BY COUNT(*) DESC, Doctor.Country"); err != nil {
		t.Fatal(err)
	}
	after := db.PlanCacheStats()
	if after.Hits <= before.Hits {
		t.Fatalf("aggregate shape missed the plan cache: %+v -> %+v", before, after)
	}
}

// TestAggregateBaselineFinisher cross-checks the engine against the
// baseline's independent sort-based finisher over the oracle's base
// rows (three implementations of the same semantics).
func TestAggregateBaselineFinisher(t *testing.T) {
	db, orc, _ := loadTiny(t)
	queries := []string{
		"SELECT Country, COUNT(*), MIN(Age), MAX(Age) FROM Patient GROUP BY Country ORDER BY COUNT(*) DESC, Country",
		"SELECT Type, AVG(Quantity) FROM Medicine, Prescription GROUP BY Type HAVING COUNT(*) > 2 ORDER BY 2",
		"SELECT DISTINCT Purpose FROM Visit ORDER BY Purpose DESC",
	}
	for _, sqlText := range queries {
		q, base, err := orc.QueryBase(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		want, err := baseline.FinishNaive(q, base)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Query(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(res.Rows, want) {
			t.Fatalf("%s: engine %d rows, baseline finisher %d", sqlText, len(res.Rows), len(want))
		}
	}
}

// TestAggregateErrors pins the bind-time validation rules.
func TestAggregateErrors(t *testing.T) {
	db, _, _ := loadTiny(t)
	for _, sqlText := range []string{
		"SELECT Country FROM Doctor GROUP BY Speciality",                   // not a grouping column
		"SELECT Country, COUNT(*) FROM Doctor",                             // plain column without GROUP BY
		"SELECT SUM(Country) FROM Doctor",                                  // SUM over a string
		"SELECT AVG(Speciality) FROM Doctor",                               // AVG over a string
		"SELECT * FROM Doctor GROUP BY Country",                            // star with GROUP BY
		"SELECT Country FROM Doctor HAVING COUNT(*) > 1",                   // HAVING without grouping the select list
		"SELECT Country, COUNT(*) FROM Doctor GROUP BY Country ORDER BY 3", // ordinal out of range
		"SELECT DISTINCT Speciality FROM Doctor ORDER BY Country",          // DISTINCT + unselected order key
		"SELECT Age FROM Patient ORDER BY COUNT(*)",                        // aggregate order key without aggregation
	} {
		if _, err := db.Query(sqlText); err == nil {
			t.Errorf("%s: expected a bind error", sqlText)
		}
	}
}
