package core

import (
	"testing"

	"github.com/ghostdb/ghostdb/internal/plan"
)

const deepQuery = `SELECT Pre.PreID FROM Prescription Pre, Visit Vis, Doctor Doc
WHERE Doc.Country = 'Spain' AND Vis.Purpose = 'Sclerosis'`

// TestDeviceIndexStrategy exercises the Figure 4 configuration: a
// climbing index on the visible Doctor.Country column lets the device
// evaluate the visible predicate itself.
func TestDeviceIndexStrategy(t *testing.T) {
	db, orc, _ := loadTiny(t, WithDeviceIndex("Doctor", "Country"))
	if !db.HasIndex("Doctor", "Country") {
		t.Fatal("device index on Doctor.Country not built")
	}
	q, err := db.Prepare(deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	specs := db.Plans(q)
	var deviceSpec *plan.Spec
	for i := range specs {
		for j, st := range specs[i].Strategies {
			if st == plan.StratVisDevice && q.Preds[j].Col.Column == "Country" {
				deviceSpec = &specs[i]
			}
		}
	}
	if deviceSpec == nil {
		t.Fatal("no plan uses the device index")
	}

	_, wantRows, err := orc.Query(deepQuery)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.QueryWithPlan(q, *deviceSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(res.Rows, wantRows) {
		t.Fatalf("device plan: %d rows, oracle %d", len(res.Rows), len(wantRows))
	}

	// The device-index plan ships nothing for the Doctor predicate: its
	// bus traffic must be strictly below the pre-filtered variant's.
	preSpec := plan.Spec{Label: "pre",
		Strategies: []plan.Strategy{plan.StratVisPre, plan.StratHidIndex}}
	if q.Preds[0].Col.Column != "Country" {
		preSpec.Strategies = []plan.Strategy{plan.StratHidIndex, plan.StratVisPre}
	}
	pre, err := db.QueryWithPlan(q, preSpec)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(pre.Rows, wantRows) {
		t.Fatal("pre plan disagrees")
	}
	if res.Report.BusBytes >= pre.Report.BusBytes {
		t.Errorf("device plan bus %d >= pre plan bus %d", res.Report.BusBytes, pre.Report.BusBytes)
	}
}

// TestDeviceIndexAllPlansAgree runs every enumerated plan (now including
// device-index variants) against the oracle.
func TestDeviceIndexAllPlansAgree(t *testing.T) {
	db, orc, _ := loadTiny(t, WithDeviceIndex("Doctor", "Country"), WithDeviceIndex("Medicine", "Type"))
	queries := []string{
		deepQuery,
		paperQuery,
		`SELECT Pre.PreID FROM Prescription Pre, Medicine Med WHERE Med.Type = 'Antibiotic'`,
	}
	for _, sqlText := range queries {
		q, err := db.Prepare(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		_, wantRows, err := orc.Query(sqlText)
		if err != nil {
			t.Fatal(err)
		}
		specs := db.Plans(q)
		sawDevice := false
		for _, spec := range specs {
			for _, st := range spec.Strategies {
				if st == plan.StratVisDevice {
					sawDevice = true
				}
			}
			res, err := db.QueryWithPlan(q, spec)
			if err != nil {
				t.Fatalf("%s / %s: %v", sqlText, spec.Describe(q), err)
			}
			if !sameRows(res.Rows, wantRows) {
				t.Errorf("%s / %s: %d rows, oracle %d", sqlText, spec.Describe(q), len(res.Rows), len(wantRows))
			}
		}
		if !sawDevice {
			t.Errorf("%s: no device-index plan enumerated", sqlText)
		}
	}
}

// TestDeviceIndexStorageCost verifies the documented trade-off: the extra
// index costs flash.
func TestDeviceIndexStorageCost(t *testing.T) {
	plain, _, _ := loadTiny(t)
	indexed, _, _ := loadTiny(t, WithDeviceIndex("Doctor", "Country"))
	if indexed.Storage().Climbing <= plain.Storage().Climbing {
		t.Error("device index did not increase climbing index footprint")
	}
}
