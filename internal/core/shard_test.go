package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/oracle"
)

// loadShardedTiny opens a DB split over n devices with the tiny
// synthetic dataset, plus a matching single-state oracle.
func loadShardedTiny(t *testing.T, n int, opts ...Option) (*DB, *oracle.Oracle, *datagen.Dataset) {
	t.Helper()
	return loadTiny(t, append([]Option{WithShards(n)}, opts...)...)
}

// TestShardedDifferential is the cross-shard differential property: the
// randomized query+DML corpus (plain SPJ, post-operator, CHECKPOINT
// interleavings) must match the single-state oracle exactly at every
// shard count, including after the delta has been merged and the global
// root mapping rebuilt.
func TestShardedDifferential(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			db, orc, ds := loadShardedTiny(t, shards)
			g := &dmlGen{
				queryGen: &queryGen{rng: rand.New(rand.NewSource(int64(101 + shards))), ds: ds},
				sch:      db.Schema(),
				orc:      orc,
			}

			iterations := 240
			if testing.Short() {
				iterations = 50
			}
			queries, mutations := 0, 0
			for i := 0; i < iterations; i++ {
				switch roll := g.rng.Intn(10); {
				case roll < 4:
					checkAgainstOracle(t, db, orc, g.next())
					queries++
				case roll < 6:
					checkAgainstOracle(t, db, orc, g.nextPostOp())
					queries++
				case roll == 9 && i%29 == 0:
					en, eerr := db.Exec("CHECKPOINT")
					on, oerr := orc.Exec("CHECKPOINT")
					if eerr != nil || oerr != nil {
						t.Fatalf("iter %d checkpoint: engine %v, oracle %v", i, eerr, oerr)
					}
					if en != on {
						t.Fatalf("iter %d checkpoint absorbed %d, oracle %d", i, en, on)
					}
				default:
					stmt := g.nextDML()
					if stmt == "" {
						continue
					}
					en, eerr := db.Exec(stmt)
					on, oerr := orc.Exec(stmt)
					if (eerr == nil) != (oerr == nil) {
						t.Fatalf("iter %d %q: engine err %v, oracle err %v", i, stmt, eerr, oerr)
					}
					if eerr != nil {
						t.Fatalf("iter %d %q: %v", i, stmt, eerr)
					}
					if en != on {
						t.Fatalf("iter %d %q: engine affected %d, oracle %d", i, stmt, en, on)
					}
					mutations++
				}
			}
			if queries < iterations/5 || mutations < iterations/5 {
				t.Fatalf("corpus degenerate: %d queries, %d mutations", queries, mutations)
			}

			// Final checkpoint and post-merge agreement.
			en, eerr := db.Checkpoint()
			on, oerr := orc.Checkpoint()
			if eerr != nil || oerr != nil || en != on {
				t.Fatalf("final checkpoint: engine (%d, %v), oracle (%d, %v)", en, eerr, on, oerr)
			}
			for i := 0; i < 15; i++ {
				checkAgainstOracle(t, db, orc, g.next())
				checkAgainstOracle(t, db, orc, g.nextPostOp())
			}
		})
	}
}

// TestShardedConcurrentQueries is the 16-goroutine torture test against
// a 4-shard DB: mixed Query / forced-plan / Estimate traffic, every
// goroutine observing the single-threaded row counts. Run with -race.
func TestShardedConcurrentQueries(t *testing.T) {
	db, _, _ := loadShardedTiny(t, 4)

	want := map[string]int{}
	for _, q := range concurrentQueries {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = len(res.Rows)
	}

	const goroutines = 16
	const iters = 4
	var wg sync.WaitGroup
	errc := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := concurrentQueries[(g+i)%len(concurrentQueries)]
				switch (g + i) % 3 {
				case 0:
					res, err := db.Query(q)
					if err != nil {
						errc <- err
						return
					}
					if len(res.Rows) != want[q] {
						errc <- fmt.Errorf("goroutine %d: %s: got %d rows, want %d", g, q, len(res.Rows), want[q])
						return
					}
				case 1:
					bound, err := db.Prepare(q)
					if err != nil {
						errc <- err
						return
					}
					specs := db.Plans(bound)
					if len(specs) == 0 {
						errc <- fmt.Errorf("goroutine %d: no plans for %s", g, q)
						return
					}
					res, err := db.QueryWithPlan(bound, specs[(g+i)%len(specs)])
					if err != nil {
						errc <- err
						return
					}
					if len(res.Rows) != want[q] {
						errc <- fmt.Errorf("goroutine %d: forced plan %s: got %d rows, want %d", g, q, len(res.Rows), want[q])
						return
					}
				case 2:
					bound, err := db.Prepare(q)
					if err != nil {
						errc <- err
						return
					}
					if _, err := db.Estimate(bound, db.Plans(bound)[0]); err != nil {
						errc <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestShardsOneIsLegacyEngine pins the shards=1 contract: WithShards(1)
// selects the classic single-device engine (no shard set at all), and
// its queries are bit-identical to a default Open — same rows, same
// simulated time, same flash and bus work.
func TestShardsOneIsLegacyEngine(t *testing.T) {
	single, _, _ := loadTiny(t)
	one, _, _ := loadShardedTiny(t, 1)

	if one.ShardCount() != 0 {
		t.Fatalf("ShardCount with shards=1 = %d, want 0 (legacy engine)", one.ShardCount())
	}
	if one.ShardInfos() != nil {
		t.Fatal("ShardInfos with shards=1 should be nil")
	}

	for _, q := range append([]string{paperQuery}, concurrentQueries...) {
		a, err := single.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		b, err := one.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Columns, b.Columns) || !sameRows(a.Rows, b.Rows) {
			t.Fatalf("%s: shards=1 result differs from single-device", q)
		}
		if a.Report.TotalTime != b.Report.TotalTime ||
			a.Report.Flash != b.Report.Flash ||
			a.Report.BusBytes != b.Report.BusBytes ||
			a.Report.BusMsgs != b.Report.BusMsgs {
			t.Fatalf("%s: shards=1 report differs: %+v vs %+v", q, b.Report, a.Report)
		}
	}
}

// TestShardedReportMerge checks the merged report's cost semantics on a
// scatter query: per-shard reports are surfaced, the reported simulated
// time is the max over the shards (the devices run concurrently), and
// the flash/bus work is the sum.
func TestShardedReportMerge(t *testing.T) {
	db, _, _ := loadShardedTiny(t, 4)
	res, err := db.Query(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShardReports) != 4 {
		t.Fatalf("ShardReports = %d entries, want 4", len(res.ShardReports))
	}
	var maxTime, sumReads, sumBus = res.Report.TotalTime, int64(0), int64(0)
	sawMax := false
	for s, r := range res.ShardReports {
		if r == nil {
			t.Fatalf("shard %d report missing", s)
		}
		if r.TotalTime > maxTime {
			t.Fatalf("shard %d sim time %v exceeds merged max %v", s, r.TotalTime, maxTime)
		}
		if r.TotalTime == maxTime {
			sawMax = true
		}
		sumReads += r.Flash.PageReads
		sumBus += r.BusBytes
	}
	if !sawMax {
		t.Fatalf("merged TotalTime %v matches no shard", maxTime)
	}
	if res.Report.Flash.PageReads != sumReads {
		t.Fatalf("merged PageReads %d, want per-shard sum %d", res.Report.Flash.PageReads, sumReads)
	}
	if res.Report.BusBytes != sumBus {
		t.Fatalf("merged BusBytes %d, want per-shard sum %d", res.Report.BusBytes, sumBus)
	}
}

// TestShardClockArenaIsolation is the refactor's sharing audit pinned as
// a regression test: every shard owns its clock and RAM arena. Scatter
// queries advance each shard's clock independently, the coordinator's
// own (unused) device never accrues simulated time or RAM, and no
// query-time arena grant leaks on any shard.
func TestShardClockArenaIsolation(t *testing.T) {
	db, _, _ := loadShardedTiny(t, 4)
	for i := 0; i < 3; i++ {
		if _, err := db.Query(paperQuery); err != nil {
			t.Fatal(err)
		}
	}

	if got := db.clock.Now(); got != 0 {
		t.Fatalf("coordinator clock advanced to %v; shards must own their clocks", got)
	}
	if high := db.dev.RAM.High(); high != 0 {
		t.Fatalf("coordinator arena high-water %d; shards must own their arenas", high)
	}

	infos := db.ShardInfos()
	if len(infos) != 4 {
		t.Fatalf("ShardInfos = %d entries, want 4", len(infos))
	}
	clocks := make(map[int64]bool)
	for _, in := range infos {
		if in.SimTime <= 0 {
			t.Fatalf("shard %d clock did not advance", in.Shard)
		}
		clocks[int64(in.SimTime)] = true
		if in.RootRows == 0 {
			t.Fatalf("shard %d owns no root rows", in.Shard)
		}
	}

	// Distinct root slices mean distinct work: with the tiny dataset's
	// uneven round-robin remainder the clocks cannot all collapse to one
	// value unless they share state.
	for s, c := range db.shards.children {
		if c.clock == db.clock {
			t.Fatalf("shard %d shares the coordinator clock", s)
		}
		if c.dev.RAM == db.dev.RAM {
			t.Fatalf("shard %d shares the coordinator arena", s)
		}
		for s2, c2 := range db.shards.children {
			if s2 > s && (c.clock == c2.clock || c.dev.RAM == c2.dev.RAM) {
				t.Fatalf("shards %d and %d share device state", s, s2)
			}
		}
		// No per-query grant may survive the queries above (the page
		// cache and delta grants are persistent device state).
		for _, u := range c.dev.RAM.Snapshot() {
			if !strings.HasPrefix(u.Label, "delta:") && u.Label != "page-cache" {
				t.Fatalf("shard %d leaked arena grant %+v", s, u)
			}
		}
	}
	_ = clocks
}

// TestShardedRootPredicates pins the global->local key rewrite: root-PK
// point, range, BETWEEN and IN predicates must select exactly the same
// rows as a single device, across shard counts.
func TestShardedRootPredicates(t *testing.T) {
	single, orc, _ := loadTiny(t)
	root := single.Schema().Root()
	pk := root.Name + "." + root.PrimaryKey().Name
	n := testRowCount(single, root.Name)
	if n < 8 {
		t.Fatalf("tiny dataset root too small: %d", n)
	}
	queries := []string{
		fmt.Sprintf("SELECT %s FROM %s WHERE %s = %d", pk, root.Name, pk, n/2),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s <> %d", pk, root.Name, pk, n/2),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s < %d", pk, root.Name, pk, n/3),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s <= %d", pk, root.Name, pk, n/3),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s > %d", pk, root.Name, pk, 2*n/3),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s >= %d", pk, root.Name, pk, 2*n/3),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s BETWEEN %d AND %d", pk, root.Name, pk, n/4, 3*n/4),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s BETWEEN %d AND %d", pk, root.Name, pk, 3*n/4, n/4),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s IN (%d, %d, %d, %d)", pk, root.Name, pk, 1, n/2, n, n+7),
		fmt.Sprintf("SELECT %s FROM %s WHERE %s = %d", pk, root.Name, pk, n+100),
		fmt.Sprintf("SELECT COUNT(*), MIN(%s), MAX(%s) FROM %s WHERE %s BETWEEN %d AND %d",
			pk, pk, root.Name, pk, n/4, 3*n/4),
	}
	for _, shards := range []int{2, 4} {
		db, _, _ := loadShardedTiny(t, shards)
		for _, q := range queries {
			checkAgainstOracle(t, db, orc, q)
		}
		_ = db
	}
	_ = orc
}

// TestShardedExplainAnalyze checks the scatter-gather EXPLAIN ANALYZE:
// per-shard operator actuals and sim times, DB-wide estimates, and a
// rendering that carries one section per shard.
func TestShardedExplainAnalyze(t *testing.T) {
	db, _, _ := loadShardedTiny(t, 2)
	a, err := db.ExplainAnalyze(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Shards) != 2 {
		t.Fatalf("Shards = %d entries, want 2", len(a.Shards))
	}
	if a.Ops != nil {
		t.Fatal("merged Ops should be nil on a sharded ANALYZE (operators are per-device)")
	}
	for _, sh := range a.Shards {
		if len(sh.Ops) == 0 {
			t.Fatalf("shard %d has no operator rows", sh.Shard)
		}
		if sh.SimTime <= 0 {
			t.Fatalf("shard %d sim time %v", sh.Shard, sh.SimTime)
		}
		if sh.SimTime > a.Result.Report.TotalTime {
			t.Fatalf("shard %d sim %v exceeds merged max %v", sh.Shard, sh.SimTime, a.Result.Report.TotalTime)
		}
	}
	text := a.Text()
	if !strings.Contains(text, "shard 0:") || !strings.Contains(text, "shard 1:") {
		t.Fatalf("rendered analysis missing per-shard sections:\n%s", text)
	}
	if !strings.Contains(text, "estimated:") || !strings.Contains(text, "actual:") {
		t.Fatalf("rendered analysis missing summary lines:\n%s", text)
	}

	// EXPLAIN without ANALYZE still works against shard-0 statistics.
	eo, err := db.ExplainOnly(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if eo.PlanText == "" || eo.EstimatedSim <= 0 {
		t.Fatalf("ExplainOnly: plan %q, est %v", eo.PlanText, eo.EstimatedSim)
	}
}

// testRowCount reads the coordinator's global cardinality for a table.
func testRowCount(db *DB, table string) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.rowCounts[table]
}

// TestShardedMetricsSurfaces checks the per-shard observability
// satellites: ShardCount, ShardInfos, ShardMetrics.
func TestShardedMetricsSurfaces(t *testing.T) {
	db, _, _ := loadShardedTiny(t, 2)
	if db.ShardCount() != 2 {
		t.Fatalf("ShardCount = %d, want 2", db.ShardCount())
	}
	if _, err := db.Query(paperQuery); err != nil {
		t.Fatal(err)
	}
	snaps := db.ShardMetrics()
	if len(snaps) != 2 {
		t.Fatalf("ShardMetrics = %d entries, want 2", len(snaps))
	}
	for s, snap := range snaps {
		found := false
		for _, v := range snap {
			if v.Name == "flash_page_reads_total" && v.Value > 0 {
				found = true
			}
		}
		if !found {
			t.Fatalf("shard %d registry shows no flash reads after a scatter query", s)
		}
	}
	infos := db.ShardInfos()
	rootRows := 0
	for _, in := range infos {
		rootRows += in.RootRows
	}
	if want := testRowCount(db, db.Schema().Root().Name); rootRows != want {
		t.Fatalf("per-shard root rows sum to %d, coordinator says %d", rootRows, want)
	}
}
