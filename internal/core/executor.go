package core

// This file is the run phase: it executes one fully bound query under
// one concrete plan spec on the simulated device. Everything
// parameter-independent — parsing, binding, plan enumeration, the plan
// cache and the optimizer's choice — happens in the compile phase
// (compile.go); by the time execute runs, the query carries concrete
// predicate values and the strategy per predicate is fixed.

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"

	"github.com/ghostdb/ghostdb/internal/bloom"
	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sim"
	"github.com/ghostdb/ghostdb/internal/skt"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/store"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
	"github.com/ghostdb/ghostdb/internal/visible"
)

// Result is a completed query: column labels, rows in query-root ID
// order, and the execution report.
type Result struct {
	Columns []string
	Rows    [][]value.Value
	Report  *stats.Report
	Spec    plan.Spec
	Query   *plan.Query

	// Roots holds the query-root identifier of each physical row,
	// parallel to Rows. It is captured only in physical mode (the
	// scatter-gather shard pipelines), where Rows bypass the finishing
	// stage and stay in root-ID order.
	Roots []uint32

	// ShardReports carries the per-shard execution reports when the
	// query ran on a sharded DB, indexed by shard (entries are nil for
	// shards the query did not touch). Nil on single-device DBs.
	ShardReports []*stats.Report
}

// forEachEntry visits the index entries matching p.
func forEachEntry(ix *climbing.Index, p pred.P, fn func(climbing.Entry) error) error {
	visitRange := func(lo, hi *climbing.Bound) error {
		it, err := ix.Range(lo, hi)
		if err != nil {
			return err
		}
		for {
			e, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
			if err := fn(e); err != nil {
				return err
			}
		}
	}
	switch p.Form {
	case pred.FormCompare:
		switch p.Op {
		case sql.OpEq:
			e, ok, err := ix.LookupEq(p.Val)
			if err != nil || !ok {
				return err
			}
			return fn(e)
		case sql.OpNe:
			if err := visitRange(nil, &climbing.Bound{V: p.Val, Inclusive: false}); err != nil {
				return err
			}
			return visitRange(&climbing.Bound{V: p.Val, Inclusive: false}, nil)
		case sql.OpLt:
			return visitRange(nil, &climbing.Bound{V: p.Val, Inclusive: false})
		case sql.OpLe:
			return visitRange(nil, &climbing.Bound{V: p.Val, Inclusive: true})
		case sql.OpGt:
			return visitRange(&climbing.Bound{V: p.Val, Inclusive: false}, nil)
		case sql.OpGe:
			return visitRange(&climbing.Bound{V: p.Val, Inclusive: true}, nil)
		}
		return fmt.Errorf("core: unknown operator %v", p.Op)
	case pred.FormBetween:
		return visitRange(&climbing.Bound{V: p.Lo, Inclusive: true}, &climbing.Bound{V: p.Hi, Inclusive: true})
	case pred.FormIn:
		for _, v := range p.Set {
			e, ok, err := ix.LookupEq(v)
			if err != nil {
				return err
			}
			if ok {
				if err := fn(e); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return fmt.Errorf("core: unknown predicate form %d", p.Form)
}

// execute runs the distributed plan and assembles the result. ctx (may
// be nil) cancels at batch boundaries. In physical mode — the per-shard
// half of a scatter-gather execution — the host-side finishing stage is
// skipped (the coordinator finishes after merging shard streams) and
// the result carries the root identifier of every physical row.
func (db *DB) execute(q *plan.Query, spec plan.Spec, visSel [][]uint32, ctx context.Context, physical bool) (*Result, error) {
	db.dev.RAM.ResetHigh()
	flashStart := db.dev.Flash.Stats()
	busStart := db.net.Stats(trace.Terminal, trace.Device)
	clockStart := db.clock.Now()

	rep := &stats.Report{Query: q.SQL, PlanLabel: spec.Label}
	ex := executorPool.Get().(*executor)
	ex.reset(db, q, spec, rep, visSel)
	if ctx != nil {
		ex.ctx, ex.done = ctx, ctx.Done()
	}
	// Live-DML footprint: which base root rows the delta shadows, and
	// which root IDs must be re-evaluated against the effective state.
	ex.deltaDead, ex.deltaCands = db.deltaFootprint(q)

	runErr := ex.run()
	// Measure before cleanup: scratch erasure happens between queries.
	rep.TotalTime = db.clock.Span(clockStart)
	rep.RAMHigh = db.dev.RAM.High()
	rep.Flash = db.dev.Flash.Stats().Sub(flashStart)
	busNow := db.net.Stats(trace.Terminal, trace.Device)
	rep.BusBytes = busNow.Bytes - busStart.Bytes
	rep.BusMsgs = busNow.Messages - busStart.Messages

	// Feed the engine registry from the measured report. Atomic adds
	// only — no simulated-clock charges, so metrics cannot perturb any
	// reported timing or tuple count.
	if m := db.metrics; m != nil {
		m.batchesPulled.Add(ex.batches)
		m.flashPageReads.Add(rep.Flash.PageReads)
		m.busBytes.Add(rep.BusBytes)
		m.ramHighWater.Observe(rep.RAMHigh)
	}

	ex.cleanup()
	if runErr != nil {
		ex.release()
		return nil, runErr
	}

	res := ex.assemble(physical)
	res.Report = rep
	ex.release()
	// Post-operators (aggregation, HAVING, DISTINCT, ORDER BY, LIMIT)
	// run host-side on the secure display, outside the simulated device.
	if !physical && q.HasPostOps() {
		rows, err := finishRows(q, res.Rows)
		if err != nil {
			return nil, err
		}
		res.Rows = rows
	}
	rep.ResultRows = len(res.Rows)
	return res, nil
}

// release drops every per-query reference (keeping the reusable backing
// storage) and returns the executor to the pool, so an idle pool entry
// does not pin the last query's projection stores or report.
func (ex *executor) release() {
	ex.db, ex.q, ex.rep, ex.visSel = nil, nil, nil, nil
	ex.spec = plan.Spec{}
	ex.rootBySeq = nil
	ex.deltaDead, ex.deltaCands, ex.deltaRows = nil, nil, nil
	ex.ctx, ex.done = nil, nil
	for j := range ex.projVals {
		ex.projVals[j] = nil
	}
	clear(ex.layout)
	ex.layout = ex.layout[:0]
	clear(ex.hps)
	ex.hps = ex.hps[:0]
	clear(ex.kps)
	ex.kps = ex.kps[:0]
	executorPool.Put(ex)
}

// executorPool recycles executor scratch state (layout, field map,
// projection stores, live-sequence buffer) across query executions.
// Nothing the executor hands out (Result, Report) points back into it.
var executorPool = sync.Pool{
	New: func() any { return &executor{field: map[string]int{}} },
}

// reset prepares a pooled executor for one execution, reusing the
// backing storage of its scratch slices and map.
func (ex *executor) reset(db *DB, q *plan.Query, spec plan.Spec, rep *stats.Report, visSel [][]uint32) {
	ex.db, ex.q, ex.spec, ex.rep, ex.visSel = db, q, spec, rep, visSel
	clear(ex.field)
	ex.layout = ex.layout[:0]
	ex.blooms = ex.blooms[:0]
	ex.liveSeqs = ex.liveSeqs[:0]
	ex.rootBySeq = ex.rootBySeq[:0]
	ex.deltaDead, ex.deltaCands = nil, nil
	ex.deltaRows = ex.deltaRows[:0]
	ex.ctx, ex.done, ex.batches = nil, nil, 0
	ex.hps = ex.hps[:0]
	ex.kps = ex.kps[:0]
	if cap(ex.projVals) >= len(q.Projs) {
		ex.projVals = ex.projVals[:len(q.Projs)]
		for j := range ex.projVals {
			ex.projVals[j] = nil
		}
	} else {
		ex.projVals = make([][]value.Value, len(q.Projs))
	}
}

// executor carries one query execution's state.
type executor struct {
	db   *DB
	q    *plan.Query
	spec plan.Spec
	rep  *stats.Report

	visSel [][]uint32 // per-pred PC selection result (nil for hidden preds)

	layout []string       // member tables in Row.IDs[1:]
	field  map[string]int // table -> field index in Row.IDs

	blooms []func() // bloom grant releases
	// projVals holds the display-side projected values, keyed by the
	// dense sequence numbers the Store operator assigns; the slices are
	// sized once the candidate count is known (sizeProjStore).
	projVals [][]value.Value
	liveSeqs []uint32
	// rootBySeq maps each sequence number to its query-root ID, so the
	// assembled base rows can merge with delta-resident rows in root
	// order.
	rootBySeq []uint32
	hps       []hiddenProj // finalScan scratch
	kps       []keyProj    // finalScan scratch

	// Live-DML state for this execution: base root IDs to subtract from
	// the pipeline (their tree touches the delta), the candidate root IDs
	// re-evaluated against the effective state, and the resulting rows.
	deltaDead  map[uint32]struct{}
	deltaCands []uint32
	deltaRows  []deltaRow

	// ctx/done cancel the query at batch boundaries (nil: never).
	ctx  context.Context
	done <-chan struct{}
	// batches counts vectorized batches pulled, fed to the metrics
	// registry once per query.
	batches int64
}

// ctxBatchIter wraps the root ID stream: each pull checks cancellation
// and bumps the executor's batch counter (in row mode a "batch" is the
// single ID the caller demanded).
type ctxBatchIter struct {
	in exec.BatchIter
	ex *executor
}

func (c *ctxBatchIter) Next(dst []uint32) (int, error) {
	if err := c.ex.checkCtx(); err != nil {
		return 0, err
	}
	n, err := c.in.Next(dst)
	if n > 0 {
		c.ex.batches++
	}
	return n, err
}

func (c *ctxBatchIter) Close() { c.in.Close() }

// checkCtx reports the context's cancellation error, if any; a nil done
// channel (no context) always passes. Called at batch boundaries only,
// so the non-blocking select stays off the per-tuple path.
func (ex *executor) checkCtx() error {
	if ex.done == nil {
		return nil
	}
	select {
	case <-ex.done:
		return ex.ctx.Err()
	default:
		return nil
	}
}

// deltaRow is one query result row served from the effective state
// (delta-resident or reachable through mutated ancestors).
type deltaRow struct {
	root uint32
	vals []value.Value
}

// hiddenProj is one hidden-column projection resolved in the final scan.
type hiddenProj struct {
	projIdx int
	field   int
	col     store.Column
}

// keyProj is one primary-key projection emitted from the row IDs.
type keyProj struct {
	projIdx int
	field   int
}

// sizeProjStore sizes the per-projection value stores for n candidate
// rows (sequence numbers 0..n-1).
func (ex *executor) sizeProjStore(n int) {
	for j := range ex.projVals {
		ex.projVals[j] = make([]value.Value, n)
	}
	if cap(ex.rootBySeq) >= n {
		ex.rootBySeq = ex.rootBySeq[:n]
		clear(ex.rootBySeq)
	} else {
		ex.rootBySeq = make([]uint32, n)
	}
}

// batchMode reports whether this execution runs the vectorized pipeline.
// When false, every stream below is the original row-at-a-time operator
// wrapped in a prefetch-free adapter — the reference engine the batch
// pipeline must match bit for bit in simulated time and tuple counts.
func (ex *executor) batchMode() bool { return ex.db.batchSize > 1 }

// The dispatch helpers below pick the vectorized or the row-at-a-time
// implementation of each pipeline stage. Row-mode streams are Batched
// adapters; RowIterOf unwraps them back to the original iterators, so the
// row path composes exactly the pre-vectorization operator graph.

func (ex *executor) openRun(run exec.RunSource) (exec.BatchIter, error) {
	if ex.batchMode() {
		return run.OpenBatch()
	}
	it, err := run.Open()
	if err != nil {
		return nil, err
	}
	return exec.Batched(it), nil
}

func (ex *executor) union(sources []exec.IDSource, fanin int, op *stats.Op) (exec.BatchIter, error) {
	if ex.batchMode() {
		return ex.db.env.UnionBatch(sources, fanin, op)
	}
	it, err := ex.db.env.Union(sources, fanin, op)
	if err != nil {
		return nil, err
	}
	return exec.Batched(it), nil
}

func (ex *executor) intersect(its []exec.BatchIter) (exec.BatchIter, error) {
	if ex.batchMode() {
		return ex.db.env.MergeIntersectBatch(its)
	}
	rows := make([]exec.IDIter, len(its))
	for i := range its {
		rows[i] = exec.RowIterOf(its[i])
	}
	it, err := ex.db.env.MergeIntersect(rows)
	if err != nil {
		return nil, err
	}
	return exec.Batched(it), nil
}

func (ex *executor) translate(in exec.BatchIter, ix *climbing.Index, level, fanin int, op *stats.Op) (exec.BatchIter, error) {
	if ex.batchMode() {
		return ex.db.env.TranslateBatch(in, ix, level, fanin, op)
	}
	it, err := ex.db.env.Translate(exec.RowIterOf(in), ix, level, fanin, op)
	if err != nil {
		return nil, err
	}
	return exec.Batched(it), nil
}

func (ex *executor) spill(in exec.BatchIter, op *stats.Op) (exec.RunSource, error) {
	if ex.batchMode() {
		return ex.db.env.SpillBatch(in, op)
	}
	return ex.db.env.SpillIDs(exec.RowIterOf(in), op)
}

func (ex *executor) cleanup() {
	for _, free := range ex.blooms {
		free()
	}
	ex.blooms = nil
	_ = ex.db.dev.ResetScratch()
	ex.db.hid.Cache().Invalidate()
}

// probesLabel renders the Filter operator's probe-count detail
// (strconv.Itoa serves small counts from its static table).
func probesLabel(n int) string { return strconv.Itoa(n) + " probes" }

// strategyOf returns the effective strategy for predicate i.
func (ex *executor) strategyOf(i int) plan.Strategy { return ex.spec.Strategies[i] }

func (ex *executor) run() error {
	db, q := ex.db, ex.q

	if err := ex.checkCtx(); err != nil {
		return err
	}

	// The spy sees the query text (threat model: "the only information
	// revealed ... is which queries you pose and the visible data you
	// access").
	if err := db.net.Send(trace.Terminal, trace.Device, trace.KindQuery, len(q.SQL), q.SQL, nil); err != nil {
		return err
	}
	if err := db.net.Send(trace.Terminal, trace.Server, trace.KindQuery, len(q.SQL), q.SQL, nil); err != nil {
		return err
	}

	// Group predicates. Device-indexed visible predicates join the
	// hidden index contributions: they are evaluated entirely inside
	// the device (Figure 4's Doctor.Country index).
	visPreByTable := map[string][]int{}
	visPostByTable := map[string][]int{}
	var indexPreds, hidPostPreds []int
	for i := range q.Preds {
		switch ex.strategyOf(i) {
		case plan.StratVisPre:
			t := q.Preds[i].Col.Table
			visPreByTable[t] = append(visPreByTable[t], i)
		case plan.StratVisPost:
			t := q.Preds[i].Col.Table
			visPostByTable[t] = append(visPostByTable[t], i)
		case plan.StratHidIndex, plan.StratVisDevice:
			indexPreds = append(indexPreds, i)
		case plan.StratHidPost:
			hidPostPreds = append(hidPostPreds, i)
		}
	}

	// Delegation trace for visible predicates.
	for i := range q.Preds {
		if q.Preds[i].Hidden() {
			continue
		}
		note := q.Preds[i].String()
		if err := db.net.Send(trace.Terminal, trace.Server, trace.KindDelegation, len(note), note, nil); err != nil {
			return err
		}
		if err := db.net.Send(trace.Server, trace.Terminal, trace.KindCount, 8,
			fmt.Sprintf("|%s|=%d", q.Preds[i].Col, len(ex.visSel[i])), nil); err != nil {
			return err
		}
	}

	// Row layout: which member tables must travel with each row.
	ex.buildLayout(visPostByTable, hidPostPreds)

	// Device-side contributions and the root ID stream.
	rootIter, err := ex.rootStream(visPreByTable, indexPreds)
	if err != nil {
		return err
	}
	// Cancellation checks and the batches-pulled count ride the batch
	// boundary: one non-blocking select and one local increment per
	// pull, nothing per tuple.
	rootIter = &ctxBatchIter{in: rootIter, ex: ex}

	// Live DML: subtract base root rows whose referenced tree touches
	// the delta. The index structures answered for the base segments
	// only; these rows are re-evaluated against the effective state
	// after the pipeline (evalDeltaRows).
	if len(ex.deltaDead) > 0 {
		dead := ex.deltaDead
		probe := func(id uint32) bool { _, ok := dead[id]; return ok }
		op := ex.rep.NewOp("Tombstones", q.Root.Name)
		if ex.batchMode() {
			rootIter = db.env.FilterDeadBatch(rootIter, probe, op)
		} else {
			rootIter = exec.Batched(db.env.FilterDead(exec.RowIterOf(rootIter), probe, op))
		}
	}

	// Bloom filters for post-filtered tables, then hidden post
	// predicates (attribute-fetch filters), in that order.
	blooms, err := ex.buildBlooms(visPostByTable)
	if err != nil {
		rootIter.Close()
		return err
	}
	type hidFilter struct {
		col   store.Column
		field int
		p     pred.P
	}
	var hidFilters []hidFilter
	for _, i := range hidPostPreds {
		p := q.Preds[i]
		td, ok := db.hid.Table(p.Col.Table)
		if !ok {
			rootIter.Close()
			return fmt.Errorf("core: no hidden table %s", p.Col.Table)
		}
		col, ok := td.Column(p.Col.Column)
		if !ok {
			rootIter.Close()
			return fmt.Errorf("core: no hidden column %s", p.Col)
		}
		hidFilters = append(hidFilters, hidFilter{col: col, field: ex.field[p.Col.Table], p: p.P})
	}
	nFilters := len(blooms) + len(hidFilters)

	// SKT access + filtering + store (Figure 5's lower pipeline).
	var sktTable *skt.SKT
	if len(ex.layout) > 0 {
		s, ok := db.skts[q.Root.Name]
		if !ok {
			rootIter.Close()
			return fmt.Errorf("core: no SKT rooted at %s", q.Root.Name)
		}
		sktTable = s
	}
	var rf *exec.RowFile
	if ex.batchMode() {
		spec := exec.JoinFilterSpec{SKT: sktTable, Tables: ex.layout}
		for _, b := range blooms {
			spec.Filters = append(spec.Filters, db.env.BloomProbeCosted(b.f, b.field))
		}
		for _, h := range hidFilters {
			spec.Filters = append(spec.Filters, db.env.HiddenPredCosted(h.col, h.field, h.p))
		}
		spec.JoinOp = ex.rep.NewOp("AccessSKT", q.Root.Name)
		spec.FilterOp = ex.rep.NewOp("Filter", probesLabel(nFilters))
		rows, err := db.env.JoinFilterBatch(rootIter, spec)
		if err != nil {
			rootIter.Close()
			return err
		}
		storeOp := ex.rep.NewOp("Store", "materialize candidates")
		phase := db.clock.Now()
		rf, err = db.env.MaterializeRowsBatch(rows, 1+len(ex.layout), true, storeOp)
		if err != nil {
			return err
		}
		storeOp.AddTime(db.clock.Span(phase))
		storeOp.NoteRAM(db.dev.RAM.Used())
	} else {
		var filters []exec.RowFilter
		for _, b := range blooms {
			filters = append(filters, db.env.BloomProbe(b.f, b.field))
		}
		for _, h := range hidFilters {
			filters = append(filters, db.env.HiddenPredFilter(h.col, h.field, h.p))
		}
		sktOp := ex.rep.NewOp("AccessSKT", q.Root.Name)
		rootRows := exec.RowIterOf(rootIter)
		var rows exec.RowIter
		if sktTable == nil {
			rows = &idRowIter{in: rootRows, op: sktOp}
		} else {
			rows = db.env.SKTJoin(rootRows, sktTable, ex.layout, sktOp)
		}
		filterOp := ex.rep.NewOp("Filter", probesLabel(len(filters)))
		if len(filters) > 0 {
			rows = exec.FilterRows(rows, filters, filterOp)
		}
		storeOp := ex.rep.NewOp("Store", "materialize candidates")
		phase := db.clock.Now()
		rf, err = db.env.MaterializeRows(rows, 1+len(ex.layout), true, storeOp)
		if err != nil {
			return err
		}
		storeOp.AddTime(db.clock.Span(phase))
		storeOp.NoteRAM(db.dev.RAM.Used())
	}

	if err := ex.checkCtx(); err != nil {
		return err
	}

	// The Store pass assigned dense sequence numbers 0..n-1; size the
	// display-side projection stores accordingly.
	ex.sizeProjStore(rf.Count())

	// Projection and verification passes.
	rf, err = ex.projectionPasses(rf, visPostByTable)
	if err != nil {
		return err
	}

	// Device-side projections (hidden columns, primary keys) and the
	// final surviving sequence scan.
	if err := ex.finalScan(rf); err != nil {
		return err
	}

	// Live DML: re-evaluate the delta-affected root candidates against
	// the effective state and ship the matches to the secure display.
	return ex.evalDeltaRows()
}

// evalDeltaRows evaluates the delta-affected candidate root IDs (the
// subtracted base rows plus the root's delta-resident rows) directly:
// chain liveness, every predicate over effective values, projections
// from the delta images in device RAM or the base stores. Costs are
// charged like any device work — RAM row decodes, predicate cycles, and
// page-cache reads for base hidden values — identically at every batch
// granularity.
func (ex *executor) evalDeltaRows() error {
	if len(ex.deltaCands) == 0 {
		return nil
	}
	db, q := ex.db, ex.q
	op := ex.rep.NewOp("DeltaScan", probesLabel(len(ex.deltaCands)))
	phase := db.clock.Now()
	lv := db.newLiveness()
	resultBytes := 0
	for n, id := range ex.deltaCands {
		if n&63 == 0 {
			if err := ex.checkCtx(); err != nil {
				return err
			}
		}
		op.AddIn(1)
		db.dev.CPU.Charge(sim.CyclesDeltaRow)
		if !lv.live(q.Root.Name, id) {
			continue
		}
		match := true
		for i := range q.Preds {
			p := q.Preds[i]
			mid, err := db.effectiveDescend(q.Root, id, p.Col.Table)
			if err != nil {
				return err
			}
			t := db.mustTable(p.Col.Table)
			v, err := db.effectiveValue(t, t.ColumnIndex(p.Col.Column), mid)
			if err != nil {
				return err
			}
			db.dev.CPU.Charge(sim.CyclesPredicate)
			ok, err := p.P.Eval(v)
			if err != nil {
				return err
			}
			if !ok {
				match = false
				break
			}
		}
		if !match {
			continue
		}
		vals := make([]value.Value, len(q.Projs))
		for j, c := range q.Projs {
			mid, err := db.effectiveDescend(q.Root, id, c.Table)
			if err != nil {
				return err
			}
			t := db.mustTable(c.Table)
			v, err := db.effectiveValue(t, t.ColumnIndex(c.Column), mid)
			if err != nil {
				return err
			}
			vals[j] = v
			resultBytes += 4 + v.EncodedSize()
		}
		resultBytes += 4 // the root ID itself
		op.AddOut(1)
		ex.deltaRows = append(ex.deltaRows, deltaRow{root: id, vals: vals})
	}
	op.AddTime(db.clock.Span(phase))
	return ex.sendResultBytes(resultBytes, "delta rows")
}

// buildLayout decides which member tables each row carries.
func (ex *executor) buildLayout(visPostByTable map[string][]int, hidPostPreds []int) {
	need := map[string]bool{}
	for t := range visPostByTable {
		need[t] = true
	}
	for _, i := range hidPostPreds {
		need[ex.q.Preds[i].Col.Table] = true
	}
	for _, c := range ex.q.Projs {
		need[c.Table] = true
	}
	delete(need, ex.q.Root.Name)
	ex.field[ex.q.Root.Name] = 0
	for _, t := range ex.q.Tables {
		if need[t] {
			ex.layout = append(ex.layout, t)
			ex.field[t] = len(ex.layout) // IDs[0] is the root
		}
	}
}

// contrib is one filtering contribution: either a hidden climbing-index
// lookup (posting lists at every level of its path) or a shipped visible
// pre-filter list at its own table's level.
type contrib struct {
	table string
	ix    *climbing.Index      // hidden contribution
	refs  [][]climbing.ListRef // per level of ix.Levels
	run   *exec.RunSource      // visible pre-filter list (own level)
}

// rootStream builds the sorted query-root ID stream by integrating all
// pre-SKT contributions, with or without cross-filtering.
func (ex *executor) rootStream(visPreByTable map[string][]int, indexPreds []int) (exec.BatchIter, error) {
	db, q := ex.db, ex.q
	contribs := make([]contrib, 0, len(indexPreds)+len(visPreByTable))

	// Index contributions (hidden predicates, and device-indexed
	// visible predicates).
	for _, i := range indexPreds {
		p := q.Preds[i]
		ix, _ := db.indexLocked(p.Col.Table, p.Col.Column)
		op := ex.rep.NewOp("ClimbingIndex", q.PredLabel(i))
		phase := db.clock.Now()
		refs := make([][]climbing.ListRef, len(ix.Levels))
		err := forEachEntry(ix, p.P, func(e climbing.Entry) error {
			for l, r := range e.Lists {
				if r.Count > 0 {
					refs[l] = append(refs[l], r)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		op.AddTime(db.clock.Span(phase))
		for _, r := range refs[0] {
			op.AddOut(int64(r.Count))
		}
		contribs = append(contribs, contrib{table: p.Col.Table, ix: ix, refs: refs})
	}

	// Visible pre-filter contributions: ship the (per-table intersected)
	// ID lists into the device and spill them as scratch runs.
	// Deterministic order: map iteration order must not decide how
	// contributions hit the (tight) scratch arena.
	preTables := make([]string, 0, len(visPreByTable))
	for t := range visPreByTable {
		preTables = append(preTables, t)
	}
	sort.Strings(preTables)
	for _, t := range preTables {
		idxs := visPreByTable[t]
		ids := ex.visSel[idxs[0]]
		for _, i := range idxs[1:] {
			ids = visible.IntersectSorted(ids, ex.visSel[i])
		}
		op := ex.rep.NewOp("ShipIDList", t)
		phase := db.clock.Now()
		run, err := ex.shipIDList(ids, t, op)
		if err != nil {
			return nil, err
		}
		op.AddTime(db.clock.Span(phase))
		contribs = append(contribs, contrib{table: t, run: &run})
	}

	rootRows := db.rowCounts[q.Root.Name]
	if len(contribs) == 0 {
		if ex.batchMode() {
			return &seqBatch{max: uint32(rootRows)}, nil
		}
		return exec.Batched(&seqIter{max: uint32(rootRows)}), nil
	}

	fanin := db.env.Fanin(0.5)
	if ex.spec.CrossFilter {
		return ex.crossFilteredRoot(contribs, fanin)
	}

	// Direct integration: every contribution yields a root-level stream.
	// Under a tight RAM budget the device cannot keep several merge
	// pipelines open at once: it materializes each contribution's root
	// list to scratch sequentially and intersects the (one-page) runs.
	spillMode := len(contribs) > 1 && ex.tightRAM(len(contribs))
	var rootIters []exec.BatchIter
	var runs []exec.RunSource
	closeAll := func() {
		for _, it := range rootIters {
			it.Close()
		}
	}
	for _, c := range contribs {
		it, err := ex.contribAtRoot(c, fanin)
		if err != nil {
			closeAll()
			return nil, err
		}
		if spillMode {
			op := ex.rep.NewOp("Store", "contribution@"+c.table)
			run, err := ex.spill(it, op)
			if err != nil {
				closeAll()
				return nil, err
			}
			runs = append(runs, run)
			continue
		}
		rootIters = append(rootIters, it)
	}
	for _, run := range runs {
		it, err := ex.openRun(run)
		if err != nil {
			closeAll()
			return nil, err
		}
		rootIters = append(rootIters, it)
	}
	return ex.intersect(rootIters)
}

// tightRAM reports whether n concurrent merge pipelines would endanger
// the arena: each needs a few stream pages plus spill-writer slack.
func (ex *executor) tightRAM(n int) bool {
	pages := ex.db.dev.RAM.Available() / int64(ex.db.dev.Profile.Flash.PageSize)
	return int64(4*(n+1)) > pages
}

// contribAtRoot opens a contribution as a stream of query-root IDs.
func (ex *executor) contribAtRoot(c contrib, fanin int) (exec.BatchIter, error) {
	db, q := ex.db, ex.q
	if c.ix != nil {
		level := c.ix.LevelOf(q.Root.Name)
		if level < 0 {
			return nil, fmt.Errorf("core: index on %s does not climb to %s", c.table, q.Root.Name)
		}
		sources := make([]exec.IDSource, 0, len(c.refs[level]))
		for _, r := range c.refs[level] {
			sources = append(sources, exec.ClimbSource{Env: db.env, Ix: c.ix, Ref: r})
		}
		op := ex.rep.NewOp("MergeLists", c.table+"@"+q.Root.Name)
		return ex.union(sources, fanin, op)
	}
	// Visible pre-filter run.
	it, err := ex.openRun(*c.run)
	if err != nil {
		return nil, err
	}
	if c.table == q.Root.Name {
		return it, nil
	}
	tr, err := db.translator(c.table)
	if err != nil {
		it.Close()
		return nil, err
	}
	level := tr.LevelOf(q.Root.Name)
	if level < 0 {
		return nil, fmt.Errorf("core: translator on %s does not reach %s", c.table, q.Root.Name)
	}
	op := ex.rep.NewOp("Translate", fmt.Sprintf("%s->%s", c.table, q.Root.Name))
	phase := db.clock.Now()
	out, err := ex.translate(it, tr, level, fanin, op)
	op.AddTime(db.clock.Span(phase))
	return out, err
}

// contribAtOwn opens a contribution as a stream at its own table level.
func (ex *executor) contribAtOwn(c contrib, fanin int) (exec.BatchIter, error) {
	db := ex.db
	if c.ix != nil {
		var sources []exec.IDSource
		for _, r := range c.refs[0] {
			sources = append(sources, exec.ClimbSource{Env: db.env, Ix: c.ix, Ref: r})
		}
		op := ex.rep.NewOp("MergeLists", c.table)
		return ex.union(sources, fanin, op)
	}
	return ex.openRun(*c.run)
}

// crossFilteredRoot combines contributions level by level: intersect at
// each table, translate the (smaller) intersection upward to the nearest
// table with contributions, repeat — the paper's cross-filtering.
func (ex *executor) crossFilteredRoot(contribs []contrib, fanin int) (exec.BatchIter, error) {
	db, q := ex.db, ex.q
	byTable := map[string][]contrib{}
	occupied := map[string]bool{}
	for _, c := range contribs {
		byTable[c.table] = append(byTable[c.table], c)
		occupied[c.table] = true
	}
	// Order tables deepest first.
	tables := make([]string, 0, len(byTable))
	for t := range byTable {
		tables = append(tables, t)
	}
	sort.Slice(tables, func(i, j int) bool {
		di, dj := db.sch.Depth(tables[i]), db.sch.Depth(tables[j])
		if di != dj {
			return di > dj
		}
		return tables[i] < tables[j]
	})

	spillMode := len(contribs) > 1 && ex.tightRAM(len(byTable))
	park := func(it exec.BatchIter, note string) (exec.BatchIter, error) {
		if !spillMode {
			return it, nil
		}
		op := ex.rep.NewOp("Store", note)
		run, err := ex.spill(it, op)
		if err != nil {
			return nil, err
		}
		return ex.openRun(run)
	}

	pending := map[string][]exec.BatchIter{}
	var rootIters []exec.BatchIter
	for _, t := range tables {
		var iters []exec.BatchIter
		group := byTable[t]
		// A lone hidden contribution with no partners at this level is
		// cheaper integrated directly at the root (its root list is
		// precomputed).
		if t != q.Root.Name && len(group) == 1 && len(pending[t]) == 0 && group[0].ix != nil {
			it, err := ex.contribAtRoot(group[0], fanin)
			if err != nil {
				return nil, err
			}
			if it, err = park(it, "contribution@"+t); err != nil {
				return nil, err
			}
			rootIters = append(rootIters, it)
			continue
		}
		for _, c := range group {
			it, err := ex.contribAtOwn(c, fanin)
			if err != nil {
				return nil, err
			}
			iters = append(iters, it)
		}
		iters = append(iters, pending[t]...)
		delete(pending, t)
		combined, err := ex.intersect(iters)
		if err != nil {
			return nil, err
		}
		if t == q.Root.Name {
			rootIters = append(rootIters, combined)
			continue
		}
		// Translate the intersection up to the nearest occupied ancestor.
		target := q.Root.Name
		for _, anc := range db.sch.PathToRoot(t)[1:] {
			if occupied[anc.Name] || len(pending[anc.Name]) > 0 {
				target = anc.Name
				break
			}
		}
		tr, err := db.translator(t)
		if err != nil {
			return nil, err
		}
		level := tr.LevelOf(target)
		op := ex.rep.NewOp("Translate", fmt.Sprintf("%s->%s (cross)", t, target))
		phase := db.clock.Now()
		translated, err := ex.translate(combined, tr, level, fanin, op)
		op.AddTime(db.clock.Span(phase))
		if err != nil {
			return nil, err
		}
		if translated, err = park(translated, fmt.Sprintf("translated %s->%s", t, target)); err != nil {
			return nil, err
		}
		if target == q.Root.Name {
			rootIters = append(rootIters, translated)
		} else {
			pending[target] = append(pending[target], translated)
			occupied[target] = true
		}
	}
	for t, its := range pending {
		// Contributions translated to a table that never got processed
		// (it was shallower in the order); intersect at root level.
		tr, err := db.translator(t)
		if err != nil {
			return nil, err
		}
		for _, it := range its {
			op := ex.rep.NewOp("Translate", fmt.Sprintf("%s->%s (late)", t, q.Root.Name))
			translated, err := ex.translate(it, tr, tr.LevelOf(q.Root.Name), fanin, op)
			if err != nil {
				return nil, err
			}
			rootIters = append(rootIters, translated)
		}
	}
	return ex.intersect(rootIters)
}

// shipIDList streams a sorted visible ID list server->terminal->device in
// bus-chunked messages and spills it to a scratch run on the device.
func (ex *executor) shipIDList(ids []uint32, table string, op *stats.Op) (exec.RunSource, error) {
	op.AddIn(int64(len(ids)))
	if ex.batchMode() {
		b := &busIDBatch{ex: ex, ids: ids, note: table + " IDs", kind: trace.KindIDList}
		return ex.db.env.SpillBatch(b, op)
	}
	it := &busIDIter{ex: ex, ids: ids, note: table + " IDs", kind: trace.KindIDList}
	return ex.db.env.SpillIDs(it, op)
}

// builtBloom is one constructed Bloom filter and the row field it probes.
type builtBloom struct {
	f     *bloom.Filter
	field int
}

// buildBlooms ships each post-filtered table's ID list and hashes it into
// a Bloom filter sized to fit the remaining RAM.
func (ex *executor) buildBlooms(visPostByTable map[string][]int) ([]builtBloom, error) {
	db := ex.db
	var filters []builtBloom
	// Deterministic order.
	var tables []string
	for t := range visPostByTable {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	remaining := len(tables)
	for _, t := range tables {
		idxs := visPostByTable[t]
		ids := ex.visSel[idxs[0]]
		for _, i := range idxs[1:] {
			ids = visible.IntersectSorted(ids, ex.visSel[i])
		}
		op := ex.rep.NewOp("BloomBuild", t)
		phase := db.clock.Now()
		maxBytes := int(db.dev.RAM.Available()) / (remaining + 1)
		var f *bloom.Filter
		var free func()
		var err error
		if ex.batchMode() {
			b := &busIDBatch{ex: ex, ids: ids, note: t + " IDs (bloom)", kind: trace.KindIDList}
			f, free, err = db.env.BuildBloomBatch(b, len(ids), db.opts.TargetFPR, maxBytes, op)
		} else {
			it := &busIDIter{ex: ex, ids: ids, note: t + " IDs (bloom)", kind: trace.KindIDList}
			f, free, err = db.env.BuildBloom(it, len(ids), db.opts.TargetFPR, maxBytes, op)
		}
		if err != nil {
			return nil, err
		}
		op.AddTime(db.clock.Span(phase))
		op.Detail = fmt.Sprintf("%s fpr=%.4f", t, f.EstimatedFPR())
		ex.blooms = append(ex.blooms, free)
		filters = append(filters, builtBloom{f: f, field: ex.field[t]})
		remaining--
	}
	return filters, nil
}

// projectionPasses runs one sort+merge pass per table that needs a
// visible stream: attaching projected visible values and verifying
// post-filtered predicates exactly (repairing Bloom false positives).
func (ex *executor) projectionPasses(rf *exec.RowFile, visPostByTable map[string][]int) (*exec.RowFile, error) {
	db, q := ex.db, ex.q

	// Visible (non-PK) projected columns per table.
	visProj := map[string][]int{} // table -> projection indexes
	for j, c := range q.Projs {
		if c.Hidden {
			continue
		}
		t, _ := db.sch.Table(c.Table)
		if col, _ := t.Column(c.Column); col != nil && col.PrimaryKey {
			continue // IDs are on the device already
		}
		visProj[c.Table] = append(visProj[c.Table], j)
	}

	// Pass list: root first (the file starts sorted by root ID), then
	// the other tables in FROM order.
	passSet := map[string]bool{}
	for t := range visProj {
		passSet[t] = true
	}
	for t := range visPostByTable {
		passSet[t] = true
	}
	var passes []string
	if passSet[q.Root.Name] {
		passes = append(passes, q.Root.Name)
	}
	for _, t := range q.Tables {
		if t != q.Root.Name && passSet[t] {
			passes = append(passes, t)
		}
	}

	sortedBy := q.Root.Name
	for _, t := range passes {
		if err := ex.checkCtx(); err != nil {
			return nil, err
		}
		field := ex.field[t]
		if sortedBy != t {
			op := ex.rep.NewOp("Sort", "by "+t)
			phase := db.clock.Now()
			bufBytes := int(db.dev.RAM.Available()) / 2
			var err error
			rf, err = db.env.SortRowFile(rf, field, bufBytes, db.env.Fanin(0.25), op)
			if err != nil {
				return nil, err
			}
			op.AddTime(db.clock.Span(phase))
			sortedBy = t
		}
		restrict := ex.visRestriction(t)
		cols := visProj[t]
		if len(cols) == 0 {
			// Verification-only pass.
			var err error
			rf, err = ex.mergePass(rf, t, field, "", nil, restrict, true)
			if err != nil {
				return nil, err
			}
			continue
		}
		for k, projIdx := range cols {
			rewrite := k == 0 // the first merge performs the verification
			var err error
			rf, err = ex.mergePass(rf, t, field, q.Projs[projIdx].Column, []int{projIdx}, restrict, rewrite)
			if err != nil {
				return nil, err
			}
		}
	}
	return rf, nil
}

// visRestriction returns the intersected visible selection for a table,
// or nil when the table has no visible predicate (stream everything).
func (ex *executor) visRestriction(table string) []uint32 {
	var ids []uint32
	first := true
	for i, p := range ex.q.Preds {
		if p.Hidden() || p.Col.Table != table {
			continue
		}
		if first {
			ids = ex.visSel[i]
			first = false
		} else {
			ids = visible.IntersectSorted(ids, ex.visSel[i])
		}
	}
	return ids
}

// mergePass merges the row file (sorted by field) against one visible
// stream. column == "" streams bare IDs (verification only); otherwise
// the projected values are recorded for the given projection indexes.
// When rewrite is set, survivors are written to a new row file.
func (ex *executor) mergePass(rf *exec.RowFile, table string, field int, column string, projIdxs []int, restrict []uint32, rewrite bool) (*exec.RowFile, error) {
	db := ex.db
	vt, ok := db.vis.Table(table)
	if !ok {
		return nil, fmt.Errorf("core: no visible table %s", table)
	}
	var kvs []visible.KV
	var err error
	if column == "" {
		pk := mustPK(db, table)
		kvs, err = vt.ProjectSorted(pk, restrict)
	} else {
		kvs, err = vt.ProjectSorted(column, restrict)
	}
	if err != nil {
		return nil, err
	}
	label := table
	if column != "" {
		label = table + "." + column
	}
	op := ex.rep.NewOp("MergeProject", label)
	phase := db.clock.Now()
	stream := &busKVIter{ex: ex, kvs: kvs, note: label + " stream"}

	var out *exec.RowFileWriter
	resultBytes := 0
	matchFn := func(r exec.Row, v value.Value) error {
		for _, j := range projIdxs {
			ex.projVals[j][r.Seq] = v
			resultBytes += 4 + v.EncodedSize()
		}
		if out != nil {
			return out.Write(r)
		}
		return nil
	}
	if ex.batchMode() {
		var rows exec.BatchRowIter
		rows, err = rf.IterBatch()
		if err != nil {
			return nil, err
		}
		if rewrite {
			out, err = db.env.NewRowFileWriter(rf.Fields())
			if err != nil {
				rows.Close()
				return nil, err
			}
		}
		err = db.env.MergeRowsWithStreamBatch(rows, field, stream, op, matchFn)
	} else {
		var rows exec.RowIter
		rows, err = rf.Iter()
		if err != nil {
			return nil, err
		}
		if rewrite {
			out, err = db.env.NewRowFileWriter(rf.Fields())
			if err != nil {
				rows.Close()
				return nil, err
			}
		}
		err = db.env.MergeRowsWithStream(rows, field, stream, op, matchFn)
	}
	if err != nil {
		if out != nil {
			out.Abort()
		}
		return nil, err
	}
	// Matched values go to the secure display as they are produced.
	if len(projIdxs) > 0 {
		if err := ex.sendResultBytes(resultBytes, label); err != nil {
			return nil, err
		}
	}
	op.AddTime(db.clock.Span(phase))
	if out == nil {
		return rf, nil
	}
	return out.Close()
}

func mustPK(db *DB, table string) string {
	t, _ := db.sch.Table(table)
	return t.PrimaryKey().Name
}

// finalScan walks the surviving rows: collects live sequence numbers,
// fetches hidden projections from the device store, emits primary-key
// projections directly from the row IDs, and ships everything to the
// secure display.
func (ex *executor) finalScan(rf *exec.RowFile) error {
	db, q := ex.db, ex.q
	op := ex.rep.NewOp("Project", "hidden + keys")
	phase := db.clock.Now()

	hps, kps := ex.hps[:0], ex.kps[:0]
	for j, c := range q.Projs {
		if c.Hidden {
			td, ok := db.hid.Table(c.Table)
			if !ok {
				return fmt.Errorf("core: no hidden table %s", c.Table)
			}
			col, ok := td.Column(c.Column)
			if !ok {
				return fmt.Errorf("core: no hidden column %s", c)
			}
			hps = append(hps, hiddenProj{projIdx: j, field: ex.field[c.Table], col: col})
			continue
		}
		t, _ := db.sch.Table(c.Table)
		if sc, _ := t.Column(c.Column); sc != nil && sc.PrimaryKey {
			kps = append(kps, keyProj{projIdx: j, field: ex.field[c.Table]})
		}
	}
	ex.hps, ex.kps = hps, kps

	resultBytes := 0
	if cap(ex.liveSeqs) < rf.Count() {
		ex.liveSeqs = make([]uint32, 0, rf.Count())
	}
	// scanRow collects one surviving row: its live sequence number, the
	// hidden projections fetched from the device store (page-cache
	// accesses in row order) and the primary-key projections.
	scanRow := func(r exec.Row) error {
		ex.liveSeqs = append(ex.liveSeqs, r.Seq)
		ex.rootBySeq[r.Seq] = r.IDs[0]
		for _, hp := range hps {
			v, err := hp.col.Value(int(r.IDs[hp.field]) - 1)
			if err != nil {
				return err
			}
			ex.projVals[hp.projIdx][r.Seq] = v
			resultBytes += 4 + v.EncodedSize()
		}
		for _, kp := range kps {
			v := value.NewInt(int64(r.IDs[kp.field]))
			ex.projVals[kp.projIdx][r.Seq] = v
			resultBytes += 4 + v.EncodedSize()
		}
		resultBytes += 4 // the live seq itself
		return nil
	}
	if ex.batchMode() {
		it, err := rf.IterBatch()
		if err != nil {
			return err
		}
		defer it.Close()
		rb := db.env.NewRowBatch(rf.Fields())
		defer exec.PutRowBatch(rb)
		for {
			if err := ex.checkCtx(); err != nil {
				return err
			}
			k, err := it.Next(rb)
			if err != nil {
				return err
			}
			if k == 0 {
				break
			}
			ex.batches++
			op.AddIn(int64(k))
			for i := 0; i < k; i++ {
				if err := scanRow(rb.Row(i)); err != nil {
					return err
				}
			}
		}
	} else {
		it, err := rf.Iter()
		if err != nil {
			return err
		}
		defer it.Close()
		for n := 0; ; n++ {
			if n&1023 == 0 {
				if err := ex.checkCtx(); err != nil {
					return err
				}
			}
			r, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			op.AddIn(1)
			if err := scanRow(r); err != nil {
				return err
			}
		}
	}
	op.AddOut(int64(len(ex.liveSeqs)))
	op.AddTime(db.clock.Span(phase))
	return ex.sendResultBytes(resultBytes, "result rows")
}

// sendResultBytes charges chunked transfers on the secure device->display
// channel.
func (ex *executor) sendResultBytes(n int, note string) error {
	if n == 0 {
		return nil
	}
	chunk := ex.db.opts.Profile.BusChunkBytes
	for n > 0 {
		sz := chunk
		if n < sz {
			sz = n
		}
		if err := ex.db.net.Send(trace.Device, trace.Display, trace.KindResult, sz, note, nil); err != nil {
			return err
		}
		n -= sz
	}
	return nil
}

// assemble builds the final result table on the secure display side,
// merging the base pipeline's survivors with the delta-resident rows in
// query-root ID order. The base row slices share one flat backing array
// — two allocations for the whole result instead of one per row.
func (ex *executor) assemble(wantRoots bool) *Result {
	q := ex.q
	res := &Result{Spec: ex.spec, Query: q}
	// Copy: database/sql hands the driver's column slice to users without
	// copying, and the labels are shared by every execution of the shape.
	res.Columns = append([]string(nil), q.ColumnLabels()...)
	slices.Sort(ex.liveSeqs)
	nBase, nDelta := len(ex.liveSeqs), len(ex.deltaRows)
	n := nBase + nDelta
	// With post-operators the LIMIT applies to the finished result
	// (after grouping/ordering), not to the physical rows. LIMIT 0 is
	// the standard zero-row probe.
	if !q.HasPostOps() && q.HasLimit && n > q.Limit {
		n = q.Limit
	}
	nproj := len(q.Projs)
	flat := make([]value.Value, 0, n*nproj)
	res.Rows = make([][]value.Value, 0, n)
	if wantRoots {
		res.Roots = make([]uint32, 0, n)
	}
	bi, di := 0, 0
	for len(res.Rows) < n {
		// The base survivors (sorted sequence numbers follow root order)
		// and the delta rows (sorted by root ID) are disjoint: shadowed
		// roots were subtracted from the base stream.
		fromDelta := di < nDelta &&
			(bi >= nBase || ex.deltaRows[di].root < ex.rootBySeq[ex.liveSeqs[bi]])
		if fromDelta {
			res.Rows = append(res.Rows, ex.deltaRows[di].vals)
			if wantRoots {
				res.Roots = append(res.Roots, ex.deltaRows[di].root)
			}
			di++
			continue
		}
		seq := ex.liveSeqs[bi]
		bi++
		start := len(flat)
		for j := range q.Projs {
			flat = append(flat, ex.projVals[j][seq])
		}
		res.Rows = append(res.Rows, flat[start:start+nproj:start+nproj])
		if wantRoots {
			res.Roots = append(res.Roots, ex.rootBySeq[seq])
		}
	}
	return res
}

// busIDIter streams a host-side ID list through the network charge model
// (server->terminal LAN hop and terminal->device USB hop per chunk) while
// the device consumes it.
type busIDIter struct {
	ex   *executor
	ids  []uint32
	i    int
	note string
	kind trace.Kind
}

func (b *busIDIter) Next() (uint32, bool, error) {
	if b.i >= len(b.ids) {
		return 0, false, nil
	}
	chunkIDs := b.ex.db.opts.Profile.BusChunkBytes / 4
	if chunkIDs < 1 {
		chunkIDs = 1
	}
	if b.i%chunkIDs == 0 {
		n := len(b.ids) - b.i
		if n > chunkIDs {
			n = chunkIDs
		}
		var vals []value.Value
		if b.ex.db.rec.Level() == trace.CaptureFull {
			for _, id := range b.ids[b.i : b.i+n] {
				vals = append(vals, value.NewInt(int64(id)))
			}
		}
		if err := b.ex.db.net.Send(trace.Server, trace.Terminal, b.kind, n*4, b.note, vals); err != nil {
			return 0, false, err
		}
		if err := b.ex.db.net.Send(trace.Terminal, trace.Device, b.kind, n*4, b.note, vals); err != nil {
			return 0, false, err
		}
	}
	id := b.ids[b.i]
	b.i++
	return id, true, nil
}

func (b *busIDIter) Close() {}

// busIDBatch is the batched twin of busIDIter: it fills dst in whole
// chunks while sending exactly the same bus messages at exactly the same
// element boundaries, so the wire trace and charges are unchanged.
type busIDBatch struct {
	ex   *executor
	ids  []uint32
	i    int
	note string
	kind trace.Kind
}

func (b *busIDBatch) Next(dst []uint32) (int, error) {
	if b.i >= len(b.ids) {
		return 0, nil
	}
	chunkIDs := b.ex.db.opts.Profile.BusChunkBytes / 4
	if chunkIDs < 1 {
		chunkIDs = 1
	}
	n := 0
	for n < len(dst) && b.i < len(b.ids) {
		if b.i%chunkIDs == 0 {
			c := len(b.ids) - b.i
			if c > chunkIDs {
				c = chunkIDs
			}
			var vals []value.Value
			if b.ex.db.rec.Level() == trace.CaptureFull {
				for _, id := range b.ids[b.i : b.i+c] {
					vals = append(vals, value.NewInt(int64(id)))
				}
			}
			if err := b.ex.db.net.Send(trace.Server, trace.Terminal, b.kind, c*4, b.note, vals); err != nil {
				return n, err
			}
			if err := b.ex.db.net.Send(trace.Terminal, trace.Device, b.kind, c*4, b.note, vals); err != nil {
				return n, err
			}
		}
		// Copy up to the next chunk boundary (where a send is due), the
		// end of the list, or the batch capacity — whichever is first.
		seg := chunkIDs - b.i%chunkIDs
		if rest := len(b.ids) - b.i; seg > rest {
			seg = rest
		}
		if room := len(dst) - n; seg > room {
			seg = room
		}
		copy(dst[n:n+seg], b.ids[b.i:b.i+seg])
		n += seg
		b.i += seg
	}
	return n, nil
}

func (b *busIDBatch) Close() {}

// busKVIter streams (id, value) projection pairs with the same two-hop
// charging; the values are captured for the security audit.
type busKVIter struct {
	ex       *executor
	kvs      []visible.KV
	i        int
	note     string
	chunkEnd int
}

func (b *busKVIter) Next() (exec.KV, bool, error) {
	if b.i >= len(b.kvs) {
		return exec.KV{}, false, nil
	}
	if b.i >= b.chunkEnd {
		chunkBytes := b.ex.db.opts.Profile.BusChunkBytes
		bytes := 0
		end := b.i
		var vals []value.Value
		capture := b.ex.db.rec.Level() == trace.CaptureFull
		for end < len(b.kvs) && bytes < chunkBytes {
			bytes += 4 + b.kvs[end].Val.EncodedSize()
			if capture {
				vals = append(vals, b.kvs[end].Val)
			}
			end++
		}
		if err := b.ex.db.net.Send(trace.Server, trace.Terminal, trace.KindProjection, bytes, b.note, vals); err != nil {
			return exec.KV{}, false, err
		}
		if err := b.ex.db.net.Send(trace.Terminal, trace.Device, trace.KindProjection, bytes, b.note, vals); err != nil {
			return exec.KV{}, false, err
		}
		b.chunkEnd = end
	}
	kv := b.kvs[b.i]
	b.i++
	return exec.KV{ID: kv.ID, Val: kv.Val}, true, nil
}

func (b *busKVIter) Close() {}

// idRowIter adapts a bare root ID stream to rows (single-table queries).
type idRowIter struct {
	in  exec.IDIter
	op  *stats.Op
	buf [1]uint32
}

func (i *idRowIter) Next() (exec.Row, bool, error) {
	id, ok, err := i.in.Next()
	if err != nil || !ok {
		return exec.Row{}, false, err
	}
	i.op.AddIn(1)
	i.op.AddOut(1)
	i.buf[0] = id
	return exec.Row{IDs: i.buf[:]}, true, nil
}

func (i *idRowIter) Close() { i.in.Close() }

// seqIter scans 1..max (full root scan when no predicate contributes).
type seqIter struct {
	next uint32
	max  uint32
}

func (s *seqIter) Next() (uint32, bool, error) {
	if s.next >= s.max {
		return 0, false, nil
	}
	s.next++
	return s.next, true, nil
}

func (s *seqIter) Close() {}

// seqBatch is the batched full root scan.
type seqBatch struct {
	next uint32
	max  uint32
}

func (s *seqBatch) Next(dst []uint32) (int, error) {
	n := 0
	for n < len(dst) && s.next < s.max {
		s.next++
		dst[n] = s.next
		n++
	}
	return n, nil
}

func (s *seqBatch) Close() {}
