package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/storage"
)

// testBackendOptions maps the GHOSTDB_TEST_BACKEND environment variable
// onto engine options, so CI can run the whole suite against the file
// backend ("file") as well as the default simulation ("sim" or unset).
func testBackendOptions(t *testing.T) []Option {
	t.Helper()
	switch be := os.Getenv("GHOSTDB_TEST_BACKEND"); be {
	case "", "sim":
		return nil
	case "file":
		return []Option{WithBackend(storage.File(filepath.Join(t.TempDir(), "dev"), false))}
	default:
		t.Fatalf("GHOSTDB_TEST_BACKEND=%q (want sim or file)", be)
		return nil
	}
}

// fileBackendDir returns a fresh device directory for one file-backed DB.
func fileBackendDir(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "dev")
}

// TestFileSimEquivalence is the cross-backend differential gate: the
// same dataset and query corpus must return identical rows whether the
// pages live on the simulated NAND or in real files.
func TestFileSimEquivalence(t *testing.T) {
	sim := buildRecoverDB(t)
	file := buildRecoverDB(t, WithBackend(storage.File(fileBackendDir(t), false)))
	defer file.Close()
	assertCorpusEqual(t, corpusOf(t, sim), corpusOf(t, file))

	// And after a round of DML plus CHECKPOINT on both.
	for _, db := range []*DB{sim, file} {
		if _, err := db.Exec(`INSERT INTO Visit VALUES (7, DATE '2007-03-03', 'Checkup', 12.5, 1)`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Exec(`DELETE FROM Visit WHERE VisID = 2`); err != nil {
			t.Fatal(err)
		}
		if _, err := db.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	assertCorpusEqual(t, corpusOf(t, sim), corpusOf(t, file))
}

// TestFileBackendCloseReopen is the persistence acceptance test: a
// file-backed database survives Close and comes back — schema, committed
// base data and checkpointed DML — through OpenPath, and stays usable
// (queries and further DML) afterwards.
func TestFileBackendCloseReopen(t *testing.T) {
	dir := fileBackendDir(t)
	db := buildRecoverDB(t, WithBackend(storage.File(dir, false)))

	if _, err := db.Exec(`INSERT INTO Visit VALUES (7, DATE '2007-04-04', 'Reopen', 3.5, 2)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := corpusOf(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	ndb, info, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	if info.Version != 1 || info.RolledBack {
		t.Fatalf("reopened at version %d (rolled back %v), want clean version 1", info.Version, info.RolledBack)
	}
	assertCorpusEqual(t, want, corpusOf(t, ndb))

	// The reopened database is live: DML and CHECKPOINT keep working.
	if _, err := ndb.Exec(`INSERT INTO Visit VALUES (8, DATE '2007-05-05', 'Alive', 1.25, 1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := ndb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	res, err := ndb.Query(`SELECT Vis.Purpose FROM Visit Vis WHERE Vis.VisID > 0`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range res.Rows {
		if fmt.Sprintf("%v", r[0]) == "Alive" {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-reopen insert missing from %v", res.Rows)
	}
}

// TestFileBackendUncommittedLost pins the durability boundary: delta
// mutations made after the last CHECKPOINT are volatile by design, so a
// close-and-reopen rolls back to the committed version.
func TestFileBackendUncommittedLost(t *testing.T) {
	dir := fileBackendDir(t)
	db := buildRecoverDB(t, WithBackend(storage.File(dir, false)))
	committed := corpusOf(t, db)
	if _, err := db.Exec(`INSERT INTO Visit VALUES (7, DATE '2007-06-06', 'Volatile', 9.75, 3)`); err != nil {
		t.Fatal(err)
	}
	db.Close()

	ndb, info, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	if info.Version != 0 {
		t.Fatalf("reopened at version %d, want 0", info.Version)
	}
	assertCorpusEqual(t, committed, corpusOf(t, ndb))
}

// TestFileBackendSnapshotRecover runs the in-memory Snapshot/Recover
// round trip against the file backend: imaging real files, rebuilding
// into a fresh directory.
func TestFileBackendSnapshotRecover(t *testing.T) {
	db := buildRecoverDB(t, WithBackend(storage.File(fileBackendDir(t), false)))
	defer db.Close()
	if _, err := db.Exec(`DELETE FROM Visit WHERE VisID = 3`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := corpusOf(t, db)

	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Recover into a different directory (the snapshot's own path is
	// still live under db) and onto the simulated backend, proving the
	// image is backend-portable both ways.
	ndb, info, err := Recover(snap, WithBackend(storage.File(fileBackendDir(t), false)))
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	if info.Version != 1 {
		t.Fatalf("recovered version %d, want 1", info.Version)
	}
	assertCorpusEqual(t, want, corpusOf(t, ndb))

	sdb, _, err := Recover(snap, WithBackend(storage.Sim()))
	if err != nil {
		t.Fatal(err)
	}
	defer sdb.Close()
	assertCorpusEqual(t, want, corpusOf(t, sdb))
}

// TestFileBackendShardedReopen shards a file-backed database over two
// device directories and reopens it from disk.
func TestFileBackendShardedReopen(t *testing.T) {
	dir := fileBackendDir(t)
	db := buildRecoverDB(t, WithShards(2), WithBackend(storage.File(dir, false)))
	if _, err := db.Exec(`INSERT INTO Visit VALUES (7, DATE '2007-07-07', 'Shards', 2.5, 1)`); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := corpusOf(t, db)
	db.Close()

	for i := 0; i < 2; i++ {
		if !PathHoldsDatabase(filepath.Join(dir, fmt.Sprintf("shard%d", i))) {
			t.Fatalf("shard%d directory missing", i)
		}
	}
	ndb, info, err := OpenPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer ndb.Close()
	if info.Version != 1 || len(info.ShardVersions) != 2 {
		t.Fatalf("reopened version %d shards %v", info.Version, info.ShardVersions)
	}
	assertCorpusEqual(t, want, corpusOf(t, ndb))

	// A shard-count override that disagrees with the on-disk layout must
	// fail loudly instead of silently resharding.
	if _, _, err := OpenPath(dir, WithShards(3)); err == nil {
		t.Fatal("OpenPath accepted a wrong shard count")
	}
}

// TestOpenPathErrors pins the error cases: no database at the path, and
// a shard option against a single-device directory.
func TestOpenPathErrors(t *testing.T) {
	if _, _, err := OpenPath(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("OpenPath on an empty path succeeded")
	}
	dir := fileBackendDir(t)
	db := buildRecoverDB(t, WithBackend(storage.File(dir, false)))
	db.Close()
	if _, _, err := OpenPath(dir, WithShards(2)); err == nil {
		t.Fatal("OpenPath accepted shards over a single-device directory")
	}
}

// TestFileBackendPowerCutTorture is the file-backend crash-consistency
// gate: sweep power cuts across the whole operational op range, and
// after every single one, reopening FROM THE FILES must land on exactly
// the last committed version's state — never a torn mix, never a lost
// commit. With the default trial counts the single- and two-shard sweeps
// together make 200 random cut points.
func runFilePowerCutTorture(t *testing.T, shards, trials int) {
	opts := []Option{}
	if shards > 1 {
		opts = append(opts, WithShards(shards))
	}

	// Oracle runs the same schedule fault-free; rows are backend-
	// independent, so the cheap simulated backend serves as reference.
	oracle := buildRecoverDB(t, opts...)
	corpora := make([][]string, 0, tortureRounds+1)
	if c, died := tortureSchedule(t, oracle, func(int) {
		corpora = append(corpora, corpusOf(t, oracle))
	}); died || c != tortureRounds {
		t.Fatalf("oracle run died=%v committed=%d", died, c)
	}
	probe := buildRecoverDB(t, append(opts[:len(opts):len(opts)], WithFaultPlan(&fault.Plan{}))...)
	tortureSchedule(t, probe, nil)
	opRange := maxShardOps(probe) + maxShardOps(probe)/20 + 2

	for i := 0; i < trials; i++ {
		cutop := 1 + int64(i)*opRange/int64(trials)
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("cut%d", i))
		plan := &fault.Plan{CutAtOp: cutop}
		db := buildRecoverDB(t, append(opts[:len(opts):len(opts)],
			WithFaultPlan(plan), WithBackend(storage.File(dir, false)))...)
		committed, died := tortureSchedule(t, db, nil)
		if !died && committed != tortureRounds {
			t.Fatalf("cutop=%d: alive but committed %d/%d", cutop, committed, tortureRounds)
		}
		db.Close()

		ndb, info, err := OpenPath(dir)
		if err != nil {
			t.Fatalf("cutop=%d (died=%v, committed=%d): reopen: %v", cutop, died, committed, err)
		}
		if int(info.Version) != committed {
			t.Fatalf("cutop=%d: reopened version %d, want %d (died=%v, shard versions %v)",
				cutop, info.Version, committed, died, info.ShardVersions)
		}
		got := corpusOf(t, ndb)
		want := corpora[committed]
		for q := range want {
			if got[q] != want[q] {
				t.Fatalf("cutop=%d: reopened corpus diverged at version %d, query %d:\nwant %s\ngot  %s",
					cutop, committed, q, want[q], got[q])
			}
		}
		ndb.Close()
	}
}

func TestFilePowerCutTortureSingle(t *testing.T)  { runFilePowerCutTorture(t, 1, tortureTrials(t)) }
func TestFilePowerCutTortureSharded(t *testing.T) { runFilePowerCutTorture(t, 2, tortureTrials(t)) }
