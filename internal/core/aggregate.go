package core

// This file is the host-side finishing stage: aggregation, HAVING,
// DISTINCT, ORDER BY and LIMIT over the physical rows the distributed
// pipeline delivered. It runs on the secure display — the same trust
// domain that renders raw result rows — after the device has finished,
// so it advances no simulated clock and sends nothing over the traced
// buses: the spy observes exactly the traffic of the underlying SPJ
// query, and the batch and row engines stay bit-identical in simulated
// cost on aggregate queries by construction.

import (
	"fmt"

	"github.com/ghostdb/ghostdb/internal/exec"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/value"
)

// finishRows applies the query's post-operators to the physical rows
// (Projs-wide, in root-ID order) and returns the visible result rows.
func finishRows(q *plan.Query, base [][]value.Value) ([][]value.Value, error) {
	// LIMIT 0 (the standard zero-row probe) short-circuits the finishing
	// stage entirely: the result is empty whatever the post-operators.
	if q.HasLimit && q.Limit == 0 {
		return nil, nil
	}
	rows, err := outputRows(q, base)
	if err != nil {
		return nil, err
	}
	return finishTail(q, rows), nil
}

// finishTail applies the order-sensitive tail of the finishing stage —
// DISTINCT, ORDER BY, LIMIT, hidden-column stripping — to output-shaped
// rows. It is shared by the single-device path (rows in root-ID order)
// and the scatter-gather coordinator (rows re-merged into global
// root-ID order), so sort ties break identically on both: the sorter's
// arrival-order tiebreak sees the same sequence either way.
func finishTail(q *plan.Query, rows [][]value.Value) [][]value.Value {
	if q.Distinct {
		d := exec.GetDistinct(q.VisibleOuts)
		kept := rows[:0]
		for _, r := range rows {
			if !d.Seen(r) {
				kept = append(kept, r)
			}
		}
		exec.PutDistinct(d)
		rows = kept
	}
	if len(q.OrderBy) > 0 {
		keys := make([]exec.SortKey, len(q.OrderBy))
		for i, k := range q.OrderBy {
			keys[i] = exec.SortKey{Col: k.Out, Desc: k.Desc}
		}
		// With a LIMIT the sorter keeps only the top K in a bounded heap.
		s := exec.GetSorter(keys, q.Limit)
		for _, r := range rows {
			s.Push(r)
		}
		sorted := s.Finish()
		rows = make([][]value.Value, len(sorted))
		copy(rows, sorted) // the sorted slice aliases pooled storage
		exec.PutSorter(s)
	}
	if q.HasLimit && len(rows) > q.Limit {
		rows = rows[:q.Limit]
	}
	// Drop hidden ORDER BY keys appended past the visible columns.
	if len(q.Outputs) > q.VisibleOuts {
		for i := range rows {
			rows[i] = rows[i][:q.VisibleOuts:q.VisibleOuts]
		}
	}
	return rows
}

// outputRows computes the output columns from the physical rows:
// grouped aggregation when the query aggregates, a column remap
// otherwise (plain queries with ORDER BY / DISTINCT).
func outputRows(q *plan.Query, base [][]value.Value) ([][]value.Value, error) {
	width := len(q.Outputs)
	if !q.Aggregated() {
		out := make([][]value.Value, len(base))
		flat := make([]value.Value, len(base)*width)
		for i, br := range base {
			row := flat[i*width : (i+1)*width : (i+1)*width]
			for oi, o := range q.Outputs {
				row[oi] = br[o.Proj]
			}
			out[i] = row
		}
		return out, nil
	}

	g := exec.GetGrouper(q.GroupBy, aggOps(q))
	defer exec.PutGrouper(g)
	if err := g.AddBatch(base); err != nil {
		return nil, err
	}
	// A global aggregate over an empty result still yields one row
	// (COUNT = 0, NULL for the other aggregates).
	if !q.Grouped && g.Groups() == 0 {
		g.AddEmptyGroup()
	}
	return grouperRows(q, g, nil)
}

// aggOps translates the query's aggregate expressions into executor
// accumulator descriptors.
func aggOps(q *plan.Query) []exec.AggOp {
	aggs := make([]exec.AggOp, len(q.Aggs))
	for i, a := range q.Aggs {
		op := exec.AggOp{Func: a.Func, Col: a.Proj}
		if a.Proj >= 0 {
			op.ArgKind = q.Projs[a.Proj].Kind
		}
		aggs[i] = op
	}
	return aggs
}

// grouperRows finalizes a populated grouper into output rows, applying
// HAVING. order lists the group indexes to emit in sequence; nil means
// the grouper's natural first-seen order. The scatter-gather merge
// passes an order sorted by FirstSeen stamp so cross-shard groups come
// out in the same sequence the single-device engine produces.
func grouperRows(q *plan.Query, g *exec.Grouper, order []int) ([][]value.Value, error) {
	width := len(q.Outputs)
	// Key positions: output plain columns address their group key slot.
	keyPos := make(map[int]int, len(q.GroupBy))
	for pos, pi := range q.GroupBy {
		keyPos[pi] = pos
	}

	emit := func(gi int) (bool, error) {
		for _, h := range q.Having {
			ok, err := havingMatch(g.AggValue(gi, h.AggIdx), h.Op, h.Val)
			if err != nil || !ok {
				return false, err
			}
		}
		return true, nil
	}
	var out [][]value.Value
	n := g.Groups()
	if order != nil {
		n = len(order)
	}
	for i := 0; i < n; i++ {
		gi := i
		if order != nil {
			gi = order[i]
		}
		keep, err := emit(gi)
		if err != nil {
			return nil, err
		}
		if !keep {
			continue
		}
		row := make([]value.Value, width)
		for oi, o := range q.Outputs {
			if o.AggIdx >= 0 {
				row[oi] = g.AggValue(gi, o.AggIdx)
				continue
			}
			pos, ok := keyPos[o.Proj]
			if !ok {
				return nil, fmt.Errorf("core: output %s is not a grouping column", o.Label)
			}
			row[oi] = g.Key(gi, pos)
		}
		out = append(out, row)
	}
	return out, nil
}

// havingMatch evaluates one HAVING comparison. A NULL aggregate (empty
// global group) compares to nothing, like SQL's NULL.
func havingMatch(v value.Value, op sql.CompareOp, lit value.Value) (bool, error) {
	if !v.IsValid() {
		return false, nil
	}
	c, err := value.Compare(v, lit)
	if err != nil {
		return false, err
	}
	switch op {
	case sql.OpEq:
		return c == 0, nil
	case sql.OpNe:
		return c != 0, nil
	case sql.OpLt:
		return c < 0, nil
	case sql.OpLe:
		return c <= 0, nil
	case sql.OpGt:
		return c > 0, nil
	case sql.OpGe:
		return c >= 0, nil
	}
	return false, fmt.Errorf("core: unknown HAVING operator %v", op)
}
