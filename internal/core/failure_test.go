package core

import (
	"errors"
	"strings"
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/flash"
	"github.com/ghostdb/ghostdb/internal/plan"
)

// TestScratchExhaustionFailsCleanly forces the translation machinery to
// spill more than the scratch space holds: the query must fail with the
// flash-full error (no panic) and the database must stay usable.
func TestScratchExhaustionFailsCleanly(t *testing.T) {
	prof := device.SmartUSB2007()
	prof.ScratchBlocks = 1 // one 128KB erase block of scratch
	db, err := Open(WithProfile(prof))
	if err != nil {
		t.Fatal(err)
	}
	if err := db.LoadDataset(datagen.Generate(datagen.WithScale(60_000))); err != nil {
		t.Fatal(err)
	}
	// An unselective pre-filtered date predicate translates ~48K visit
	// IDs into ~480K prescription IDs of spill runs: far beyond 128KB.
	q, err := db.Prepare(`SELECT Pre.PreID FROM Prescription Pre, Visit Vis
		WHERE Vis.Date > '2004-06-01' AND Vis.Purpose = 'Sclerosis'`)
	if err != nil {
		t.Fatal(err)
	}
	spec := plan.Spec{Label: "force-pre",
		Strategies: []plan.Strategy{plan.StratVisPre, plan.StratHidIndex}}
	_, err = db.QueryWithPlan(q, spec)
	if err == nil {
		t.Fatal("expected scratch exhaustion")
	}
	if !errors.Is(err, flash.ErrSpaceFull) && !strings.Contains(err.Error(), "exhausted") {
		t.Fatalf("unexpected error: %v", err)
	}
	// The engine must have reset the scratch space; a cheap query still
	// works.
	res, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis' AND Vis.Date > '2007-06-01'`)
	if err != nil {
		t.Fatalf("database unusable after exhaustion: %v", err)
	}
	if res.Report.TotalTime <= 0 {
		t.Error("no time charged on the recovery query")
	}
}

// TestRAMBudgetNeverExceededUnderPressure sweeps tight budgets over the
// demo query's plans: every run must either succeed within its budget or
// fail with the budget error — never exceed it.
func TestRAMBudgetNeverExceededUnderPressure(t *testing.T) {
	for _, budget := range []int{12 << 10, 16 << 10, 24 << 10} {
		prof := device.SmartUSB2007().WithRAM(budget)
		prof.CacheFrames = 2
		db, err := Open(WithProfile(prof))
		if err != nil {
			t.Fatal(err)
		}
		if err := db.LoadDataset(datagen.Generate(datagen.Tiny())); err != nil {
			t.Fatal(err)
		}
		q, err := db.Prepare(paperQuery)
		if err != nil {
			t.Fatal(err)
		}
		for _, spec := range db.Plans(q) {
			res, err := db.QueryWithPlan(q, spec)
			if err != nil {
				t.Fatalf("budget %d / %s: %v", budget, spec.Label, err)
			}
			if res.Report.RAMHigh > int64(budget) {
				t.Errorf("budget %d / %s: peak %d", budget, spec.Label, res.Report.RAMHigh)
			}
		}
	}
}

// TestDeterministicReplay runs the same query twice and expects identical
// simulated times, flash counters and results — the property the whole
// experimental methodology rests on.
func TestDeterministicReplay(t *testing.T) {
	db, _, _ := loadTiny(t)
	q, err := db.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	spec := db.Plans(q)[0]
	a, err := db.QueryWithPlan(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.QueryWithPlan(q, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.TotalTime != b.Report.TotalTime {
		t.Errorf("times differ: %v vs %v", a.Report.TotalTime, b.Report.TotalTime)
	}
	if a.Report.Flash != b.Report.Flash {
		t.Errorf("flash stats differ: %+v vs %+v", a.Report.Flash, b.Report.Flash)
	}
	if !sameRows(a.Rows, b.Rows) {
		t.Error("results differ across replays")
	}
	// And across a fresh, identically-seeded database.
	db2, _, _ := loadTiny(t)
	q2, err := db2.Prepare(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	c, err := db2.QueryWithPlan(q2, spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.TotalTime != c.Report.TotalTime {
		t.Errorf("cross-instance times differ: %v vs %v", a.Report.TotalTime, c.Report.TotalTime)
	}
}
