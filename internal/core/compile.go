package core

// This file is the compile phase: the host-side, parameter-independent
// half of query processing. Compile parses and binds a SELECT and
// enumerates its plan space once; the resulting CompiledQuery is bound
// to concrete parameter values many times and executed many times
// (compile-once / bind-many / run-many). Compilations are memoized in
// the DB's plan cache, so concurrent sessions issuing the same query
// shape share one compiled form and skip the parse/bind/enumerate/cost
// work entirely. The run phase lives in executor.go.

import (
	"context"
	"fmt"
	"time"

	"github.com/ghostdb/ghostdb/internal/climbing"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/pred"
	"github.com/ghostdb/ghostdb/internal/sql"
	"github.com/ghostdb/ghostdb/internal/stats"
	"github.com/ghostdb/ghostdb/internal/value"
)

// CompiledQuery is the cacheable product of the compile phase: the bound
// query shape (which may contain '?' placeholders), the enumerated plan
// specs, and — once the optimizer has run — the chosen strategy. One
// CompiledQuery is shared by every session that issues the same query
// shape; Run may be called concurrently with different bindings.
type CompiledQuery struct {
	db    *DB
	shape *plan.Query
	specs []plan.Spec

	// chosen is the optimizer's cached strategy for this shape, written
	// under the device gate on the first unforced Run and reused by every
	// later one — the "plan" half of a prepared statement. Like any plan
	// cache, it trades re-optimization for stability: later bindings run
	// under the plan chosen for the first binding's selectivities.
	chosen *plan.Spec
}

// SQL returns the canonical text of the compiled shape (placeholders
// render as '?').
func (cq *CompiledQuery) SQL() string { return cq.shape.SQL }

// NumParams reports how many '?' placeholders the shape carries.
func (cq *CompiledQuery) NumParams() int { return cq.shape.NumParams }

// Shape returns the parameter-independent bound query.
func (cq *CompiledQuery) Shape() *plan.Query { return cq.shape }

// Specs returns the enumerated plan space (shared; do not mutate).
func (cq *CompiledQuery) Specs() []plan.Spec { return cq.specs }

// Bind substitutes parameter values into the shape, returning a fully
// bound query (see plan.Query.BindParams).
func (cq *CompiledQuery) Bind(params []value.Value) (*plan.Query, error) {
	return cq.shape.BindParams(params)
}

// Compile parses, binds and plan-enumerates a SELECT, without touching
// the plan cache. Parsing and binding are host-side work over the frozen
// schema; only the (cheap) index-existence probes take the device gate.
func (db *DB) Compile(sqlText string) (*CompiledQuery, error) {
	q, err := db.Prepare(sqlText)
	if err != nil {
		return nil, err
	}
	db.mu.Lock()
	specs := plan.Enumerate(q, db.hasIndexLocked)
	db.mu.Unlock()
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: no feasible plan for %s", q.SQL)
	}
	return &CompiledQuery{db: db, shape: q, specs: specs}, nil
}

// compileCached returns the compiled form of sqlText, consulting the
// plan cache first. The second result reports whether the lookup hit.
func (db *DB) compileCached(sqlText string) (*CompiledQuery, bool, error) {
	key := normalizeSQL(sqlText)
	if v, ok := db.planCache.get(key); ok {
		if cq, ok := v.(*CompiledQuery); ok {
			if m := db.metrics; m != nil {
				m.planCacheHits.Inc()
			}
			return cq, true, nil
		}
	}
	cq, err := db.Compile(sqlText)
	if err != nil {
		return nil, false, err
	}
	if m := db.metrics; m != nil {
		m.planCacheMisses.Inc()
	}
	db.planCache.put(key, cq)
	return cq, false, nil
}

// PlanCacheStats snapshots the shared plan cache's counters.
func (db *DB) PlanCacheStats() stats.CacheStats { return db.planCache.stats() }

// Prepare parses and binds a SELECT into its query shape. Parsing and
// binding are host-side work: they read only the frozen schema and never
// touch the device, so any number of goroutines may prepare queries
// concurrently. The shape may contain '?' placeholders; bind it with
// Query.BindParams (or use Compile/Run) before executing.
func (db *DB) Prepare(sqlText string) (*plan.Query, error) {
	db.mu.Lock()
	closed, loaded := db.closed, db.loaded
	db.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	if !loaded {
		return nil, fmt.Errorf("core: query before Build")
	}
	sel, err := sql.ParseSelect(sqlText)
	if err != nil {
		return nil, err
	}
	return plan.Bind(db.sch, sel)
}

// Plans enumerates every concrete plan for the query (demo phase 3).
func (db *DB) Plans(q *plan.Query) []plan.Spec {
	db.mu.Lock()
	defer db.mu.Unlock()
	return plan.Enumerate(q, db.hasIndexLocked)
}

// Estimate predicts a spec's simulated time using the statistics GhostDB
// has at optimization time. The query must be fully bound: selectivity
// estimation needs concrete predicate values.
func (db *DB) Estimate(q *plan.Query, spec plan.Spec) (time.Duration, error) {
	if q.NumParams > 0 {
		return 0, fmt.Errorf("core: cannot estimate a query with %d unbound parameters", q.NumParams)
	}
	if db.shards != nil {
		// The coordinator's own stores are empty; shard 0 carries ~1/n of
		// the root and full dimension replicas, giving a per-device
		// estimate (global predicate values over shard 0's data).
		return db.shards.children[0].Estimate(q, spec)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return 0, ErrClosed
	}
	visSel, err := db.visSelections(q)
	if err != nil {
		return 0, err
	}
	counts, err := db.predCounts(q, visSel)
	if err != nil {
		return 0, err
	}
	return plan.Estimate(q, spec, db.costInputs(counts)), nil
}

func (db *DB) costInputs(counts []int) plan.CostInputs {
	return plan.CostInputs{
		Counts:        counts,
		TableRows:     db.rowCounts,
		Profile:       db.opts.Profile,
		Bus:           db.opts.USB,
		AvgValueBytes: 12,
	}
}

// visSelections evaluates every visible predicate on the untrusted PC
// (free for the powerful public side) and returns the matching ID list
// per predicate index. Hidden predicates are skipped.
func (db *DB) visSelections(q *plan.Query) ([][]uint32, error) {
	visSel := make([][]uint32, len(q.Preds))
	for i, p := range q.Preds {
		if p.Hidden() {
			continue
		}
		vt, ok := db.vis.Table(p.Col.Table)
		if !ok {
			return nil, fmt.Errorf("core: no visible table %s", p.Col.Table)
		}
		ids, err := vt.Select(p.Col.Column, p.P)
		if err != nil {
			return nil, err
		}
		visSel[i] = ids
	}
	return visSel, nil
}

// predCounts computes, per predicate, the matching cardinality in its own
// table: exact PC counts for visible predicates (taken from visSel) and
// dictionary statistics for indexed hidden predicates (charged to the
// device clock, as the real optimizer would pay).
func (db *DB) predCounts(q *plan.Query, visSel [][]uint32) ([]int, error) {
	counts := make([]int, len(q.Preds))
	for i, p := range q.Preds {
		if !p.Hidden() {
			counts[i] = len(visSel[i])
			continue
		}
		ix, ok := db.indexLocked(p.Col.Table, p.Col.Column)
		if !ok {
			counts[i] = -1
			continue
		}
		n, err := db.indexCount(ix, p.P)
		if err != nil {
			return nil, err
		}
		counts[i] = n
	}
	return counts, nil
}

// indexCount evaluates a predicate's own-level cardinality from the
// climbing index dictionary.
func (db *DB) indexCount(ix *climbing.Index, p pred.P) (int, error) {
	total := 0
	err := forEachEntry(ix, p, func(e climbing.Entry) error {
		total += e.Lists[0].Count
		return nil
	})
	return total, err
}

// QueryOption adjusts one query execution.
type QueryOption func(*queryConfig)

type queryConfig struct {
	spec *plan.Spec
	ctx  context.Context
	// session attributes the execution to a session's metrics registry.
	session *Session
}

// WithSpec forces a specific plan instead of the optimizer's choice.
func WithSpec(s plan.Spec) QueryOption {
	return func(c *queryConfig) { spec := s.Clone(); c.spec = &spec }
}

// WithContext cancels the query when ctx is done. Cancellation is
// honored at batch boundaries: the engine checks between batches of the
// vectorized pipeline (and periodically in row mode) and returns
// ctx.Err(). A canceled query charges the simulated clock only for the
// work it actually performed.
func WithContext(ctx context.Context) QueryOption {
	return func(c *queryConfig) {
		if ctx != nil && ctx.Done() != nil {
			c.ctx = ctx
		}
	}
}

// withSession attributes the run to a session (internal: Session.Query
// and friends pass it so per-session metrics see the traffic).
func withSession(s *Session) QueryOption {
	return func(c *queryConfig) { c.session = s }
}

// Query compiles (through the shared plan cache), plans and executes a
// SELECT. Without options the optimizer enumerates the strategy space
// and picks the cheapest plan; repeated shapes reuse the cached
// compilation and plan choice. The query must not contain placeholders —
// use Compile and CompiledQuery.Run to execute parameterized queries.
//
// Compilation happens host-side, outside the device gate; the
// optimizer's statistics probes and the execution itself serialize on
// the gate, so concurrent callers queue for the single simulated device.
func (db *DB) Query(sqlText string, opts ...QueryOption) (*Result, error) {
	if isExplain(sqlText) {
		return db.explainQuery(sqlText, opts...)
	}
	cq, _, err := db.compileCached(sqlText)
	if err != nil {
		return nil, err
	}
	return cq.Run(nil, opts...)
}

// Run binds the compiled shape to params (ordinal order, one per '?')
// and executes it. The first unforced Run pays the optimizer's
// statistics probes and caches the chosen strategy on the CompiledQuery;
// later Runs — from any session, with any bindings — skip straight to
// execution. Pass options (e.g. WithSpec) to force a plan for one run
// without disturbing the cached choice.
func (cq *CompiledQuery) Run(params []value.Value, opts ...QueryOption) (*Result, error) {
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	db := cq.db
	// Wall-clock starts before the device-gate wait: queue time is part
	// of the latency a client observes.
	start := time.Now()
	if len(db.hooks) > 0 {
		db.fireHooks(QueryEvent{Phase: QueryStart, SQL: cq.shape.SQL})
	}
	res, err := cq.run(params, &cfg)
	wall := time.Since(start)
	var label string
	var simT time.Duration
	var rows int
	if err == nil {
		label, simT, rows = res.Report.PlanLabel, res.Report.TotalTime, res.Report.ResultRows
	}
	db.observeQuery(cfg.session, cq.shape.SQL, label, wall, simT, rows, err)
	return res, err
}

// run is the uninstrumented body of Run.
func (cq *CompiledQuery) run(params []value.Value, cfg *queryConfig) (*Result, error) {
	if cfg.ctx != nil {
		if err := cfg.ctx.Err(); err != nil {
			return nil, err
		}
	}
	bound, err := cq.shape.BindParams(params)
	if err != nil {
		return nil, err
	}
	if cq.db.shards != nil {
		return cq.db.runSharded(cq.shape.SQL, params, bound, cfg)
	}
	return cq.runBound(bound, cfg, false)
}

// runBound executes an already-bound query on this DB's own device:
// plan choice under the gate, then the distributed pipeline. physical
// selects the scatter-gather shard mode (see DB.execute).
func (cq *CompiledQuery) runBound(bound *plan.Query, cfg *queryConfig, physical bool) (*Result, error) {
	db := cq.db
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if err := db.fatalError(); err != nil {
		return nil, err
	}
	visSel, err := db.visSelections(bound)
	if err != nil {
		return nil, err
	}
	var spec plan.Spec
	switch {
	case cfg.spec != nil:
		spec = *cfg.spec
		if err := spec.Validate(bound, db.hasIndexLocked); err != nil {
			return nil, err
		}
	case cq.chosen != nil: // written under db.mu; see below
		spec = *cq.chosen
	default:
		counts, err := db.predCounts(bound, visSel)
		if err != nil {
			return nil, err
		}
		in := db.costInputs(counts)
		best, bestCost := cq.specs[0], plan.Estimate(bound, cq.specs[0], in)
		for _, s := range cq.specs[1:] {
			if c := plan.Estimate(bound, s, in); c < bestCost {
				best, bestCost = s, c
			}
		}
		spec = best
		chosen := best.Clone()
		cq.chosen = &chosen
	}
	res, err := db.execute(bound, spec, visSel, cfg.ctx, physical)
	if err != nil {
		db.noteDeviceErr(err)
	}
	return res, err
}

// QueryWithPlan executes a prepared query under an explicit plan.
func (db *DB) QueryWithPlan(q *plan.Query, spec plan.Spec, opts ...QueryOption) (*Result, error) {
	if q.NumParams > 0 {
		return nil, fmt.Errorf("core: cannot execute a query with %d unbound parameters", q.NumParams)
	}
	var cfg queryConfig
	for _, o := range opts {
		o(&cfg)
	}
	start := time.Now()
	if len(db.hooks) > 0 {
		db.fireHooks(QueryEvent{Phase: QueryStart, SQL: q.SQL})
	}
	res, err := db.queryWithPlan(q, spec, &cfg)
	wall := time.Since(start)
	var label string
	var simT time.Duration
	var rows int
	if err == nil {
		label, simT, rows = res.Report.PlanLabel, res.Report.TotalTime, res.Report.ResultRows
	}
	db.observeQuery(cfg.session, q.SQL, label, wall, simT, rows, err)
	return res, err
}

func (db *DB) queryWithPlan(q *plan.Query, spec plan.Spec, cfg *queryConfig) (*Result, error) {
	if db.shards != nil {
		// Force the spec on every shard; the shards validate it against
		// their own (identical) index structures.
		scfg := *cfg
		forced := spec.Clone()
		scfg.spec = &forced
		return db.runSharded(q.SQL, nil, q, &scfg)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil, ErrClosed
	}
	if err := db.fatalError(); err != nil {
		return nil, err
	}
	if err := spec.Validate(q, db.hasIndexLocked); err != nil {
		return nil, err
	}
	visSel, err := db.visSelections(q)
	if err != nil {
		return nil, err
	}
	res, err := db.execute(q, spec, visSel, cfg.ctx, false)
	if err != nil {
		db.noteDeviceErr(err)
	}
	return res, err
}
