package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

// queryGen builds random SPJ queries over the Figure 3 schema, drawing
// constants from the dataset's actual value pools so predicates have
// non-trivial selectivities.
type queryGen struct {
	rng *rand.Rand
	ds  *datagen.Dataset
}

// column descriptors: table, column, and how to draw a literal.
type genCol struct {
	table, column string
	literal       func(g *queryGen) string
	ordered       bool // supports range operators
}

func (g *queryGen) sample(table, column string) value.Value {
	col := g.ds.Table(table).Col(column)
	return col[g.rng.Intn(len(col))]
}

func (g *queryGen) cols() []genCol {
	strLit := func(table, column string) func(*queryGen) string {
		return func(g *queryGen) string { return "'" + g.sample(table, column).Str() + "'" }
	}
	intLit := func(table, column string) func(*queryGen) string {
		return func(g *queryGen) string { return fmt.Sprint(g.sample(table, column).Int()) }
	}
	dateLit := func(table, column string) func(*queryGen) string {
		return func(g *queryGen) string { return "'" + g.sample(table, column).String() + "'" }
	}
	return []genCol{
		{"Doctor", "Speciality", strLit("Doctor", "Speciality"), false},
		{"Doctor", "Country", strLit("Doctor", "Country"), false},
		{"Patient", "Age", intLit("Patient", "Age"), true},
		{"Patient", "BodyMassIndex", intLit("Patient", "BodyMassIndex"), true},
		{"Patient", "Country", strLit("Patient", "Country"), false},
		{"Medicine", "Type", strLit("Medicine", "Type"), false},
		{"Medicine", "Effect", strLit("Medicine", "Effect"), false},
		{"Visit", "Date", dateLit("Visit", "Date"), true},
		{"Visit", "Purpose", strLit("Visit", "Purpose"), false},
		{"Prescription", "Quantity", intLit("Prescription", "Quantity"), true},
		{"Prescription", "Frequency", intLit("Prescription", "Frequency"), true},
		{"Prescription", "WhenWritten", dateLit("Prescription", "WhenWritten"), true},
	}
}

// pathTables maps each table to its climbing path, for choosing FROM sets
// with a valid query root.
var pathTables = map[string][]string{
	"Doctor":       {"Doctor", "Visit", "Prescription"},
	"Patient":      {"Patient", "Visit", "Prescription"},
	"Medicine":     {"Medicine", "Prescription"},
	"Visit":        {"Visit", "Prescription"},
	"Prescription": {"Prescription"},
}

// next produces one random query.
func (g *queryGen) next() string {
	cols := g.cols()
	nPreds := 1 + g.rng.Intn(3)
	chosenSet := map[string]genCol{}
	for len(chosenSet) < nPreds {
		c := cols[g.rng.Intn(len(cols))]
		chosenSet[c.table+"."+c.column] = c
	}
	// Iterate the chosen set in a fixed order: map iteration order must
	// not decide how the seeded rng stream is consumed, or the "random"
	// query sequence differs between runs of the same seed.
	keys := make([]string, 0, len(chosenSet))
	for k := range chosenSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	chosen := make([]genCol, len(keys))
	for i, k := range keys {
		chosen[i] = chosenSet[k]
	}

	// FROM: every predicate table, plus enough ancestors to give the
	// set a unique query root (include each table's full climbing path
	// up to the deepest common root: simplest is to add Prescription's
	// path pieces as needed — here, include every table on every
	// chosen table's path with probability, and always the unique
	// shallowest covering table).
	from := map[string]bool{}
	for _, c := range chosen {
		for _, t := range pathTables[c.table] {
			// Always include the predicate table; include intermediate
			// path tables sometimes (they are implied joins anyway).
			if t == c.table || g.rng.Intn(2) == 0 {
				from[t] = true
			}
		}
	}
	// Guarantee a root: if more than one table, include the schema root
	// unless all chosen tables live on one path with a natural root.
	if len(from) > 1 {
		from["Prescription"] = true
	}

	var fromList []string
	for _, t := range []string{"Prescription", "Visit", "Medicine", "Doctor", "Patient"} {
		if from[t] {
			fromList = append(fromList, t)
		}
	}

	// Projections: 1-3 random columns from FROM tables (plus the root
	// key for stable comparison).
	root := fromList[0]
	projs := []string{root + "." + g.ds.Table(root).Columns[0]}
	for i := 0; i < g.rng.Intn(3); i++ {
		t := fromList[g.rng.Intn(len(fromList))]
		tb := g.ds.Table(t)
		projs = append(projs, t+"."+tb.Columns[g.rng.Intn(len(tb.Columns))])
	}

	// Predicates.
	var preds []string
	for _, c := range chosen {
		lit := c.literal(g)
		var expr string
		switch op := g.rng.Intn(6); {
		case op == 0:
			expr = fmt.Sprintf("%s.%s = %s", c.table, c.column, lit)
		case op == 1:
			expr = fmt.Sprintf("%s.%s <> %s", c.table, c.column, lit)
		case op < 4 && c.ordered:
			expr = fmt.Sprintf("%s.%s >= %s", c.table, c.column, lit)
		case op == 4 && c.ordered:
			expr = fmt.Sprintf("%s.%s < %s", c.table, c.column, lit)
		case op == 5 && c.ordered:
			expr = fmt.Sprintf("%s.%s BETWEEN %s AND %s", c.table, c.column, lit, c.literal(g))
		default:
			expr = fmt.Sprintf("%s.%s = %s", c.table, c.column, lit)
		}
		preds = append(preds, expr)
	}

	sql := "SELECT " + join(projs, ", ") + " FROM " + join(fromList, ", ")
	if len(preds) > 0 {
		sql += " WHERE " + join(preds, " AND ")
	}
	return sql
}

func join(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

// TestPropertyRandomQueriesAllPlans is the heavyweight equivalence
// property: for dozens of random queries, every enumerated plan must
// match the oracle, stay within the RAM budget, and leak nothing.
func TestPropertyRandomQueriesAllPlans(t *testing.T) {
	db, orc, ds := loadTiny(t, WithCapture(trace.CaptureFull))
	g := &queryGen{rng: rand.New(rand.NewSource(7)), ds: ds}

	iterations := 60
	if testing.Short() {
		iterations = 15
	}
	for i := 0; i < iterations; i++ {
		sqlText := g.next()
		q, err := db.Prepare(sqlText)
		if err != nil {
			t.Fatalf("query %d %q: %v", i, sqlText, err)
		}
		_, wantRows, err := orc.Query(sqlText)
		if err != nil {
			t.Fatalf("oracle %d %q: %v", i, sqlText, err)
		}
		for _, spec := range db.Plans(q) {
			res, err := db.QueryWithPlan(q, spec)
			if err != nil {
				t.Fatalf("query %d %q / %s: %v", i, sqlText, spec.Describe(q), err)
			}
			if !sameRows(res.Rows, wantRows) {
				t.Fatalf("query %d %q / %s: %d rows, oracle %d",
					i, sqlText, spec.Describe(q), len(res.Rows), len(wantRows))
			}
			if res.Report.RAMHigh > db.Device().RAM.Budget() {
				t.Fatalf("query %d %q / %s: RAM %d over budget",
					i, sqlText, spec.Describe(q), res.Report.RAMHigh)
			}
		}
	}
	// One audit over the whole session's traffic.
	leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("random query session leaked: %v", leaks[0])
	}
	// And the one-way invariant.
	for _, e := range db.Recorder().Events() {
		if e.From == trace.Device && e.To != trace.Display {
			t.Fatalf("device sent %s to %s", e.Kind, e.To)
		}
	}
}

// TestPropertyRandomQueriesTinyRAM repeats a smaller mix on a 16KB
// device, exercising the spill-everything paths.
func TestPropertyRandomQueriesTinyRAM(t *testing.T) {
	prof := SmallProfileForTest()
	db, orc, ds := loadTiny(t, WithProfile(prof))
	g := &queryGen{rng: rand.New(rand.NewSource(11)), ds: ds}
	iterations := 20
	if testing.Short() {
		iterations = 5
	}
	for i := 0; i < iterations; i++ {
		sqlText := g.next()
		checkAgainstOracle(t, db, orc, sqlText)
		if high := db.Device().RAM.High(); high > db.Device().RAM.Budget() {
			t.Fatalf("query %d %q: RAM %d over 16KB budget", i, sqlText, high)
		}
	}
}
