package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"github.com/ghostdb/ghostdb/internal/baseline"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/trace"
	"github.com/ghostdb/ghostdb/internal/value"
)

// queryGen builds random SPJ queries over the Figure 3 schema, drawing
// constants from the dataset's actual value pools so predicates have
// non-trivial selectivities.
type queryGen struct {
	rng *rand.Rand
	ds  *datagen.Dataset
}

// column descriptors: table, column, and how to draw a literal.
type genCol struct {
	table, column string
	literal       func(g *queryGen) string
	ordered       bool   // supports range operators
	kind          string // "int", "str" or "date" (aggregate eligibility)
}

func (g *queryGen) sample(table, column string) value.Value {
	col := g.ds.Table(table).Col(column)
	return col[g.rng.Intn(len(col))]
}

func (g *queryGen) cols() []genCol {
	strLit := func(table, column string) func(*queryGen) string {
		return func(g *queryGen) string { return "'" + g.sample(table, column).Str() + "'" }
	}
	intLit := func(table, column string) func(*queryGen) string {
		return func(g *queryGen) string { return fmt.Sprint(g.sample(table, column).Int()) }
	}
	dateLit := func(table, column string) func(*queryGen) string {
		return func(g *queryGen) string { return "'" + g.sample(table, column).String() + "'" }
	}
	return []genCol{
		{"Doctor", "Speciality", strLit("Doctor", "Speciality"), false, "str"},
		{"Doctor", "Country", strLit("Doctor", "Country"), false, "str"},
		{"Patient", "Age", intLit("Patient", "Age"), true, "int"},
		{"Patient", "BodyMassIndex", intLit("Patient", "BodyMassIndex"), true, "int"},
		{"Patient", "Country", strLit("Patient", "Country"), false, "str"},
		{"Medicine", "Type", strLit("Medicine", "Type"), false, "str"},
		{"Medicine", "Effect", strLit("Medicine", "Effect"), false, "str"},
		{"Visit", "Date", dateLit("Visit", "Date"), true, "date"},
		{"Visit", "Purpose", strLit("Visit", "Purpose"), false, "str"},
		{"Prescription", "Quantity", intLit("Prescription", "Quantity"), true, "int"},
		{"Prescription", "Frequency", intLit("Prescription", "Frequency"), true, "int"},
		{"Prescription", "WhenWritten", dateLit("Prescription", "WhenWritten"), true, "date"},
	}
}

// pathTables maps each table to its climbing path, for choosing FROM sets
// with a valid query root.
var pathTables = map[string][]string{
	"Doctor":       {"Doctor", "Visit", "Prescription"},
	"Patient":      {"Patient", "Visit", "Prescription"},
	"Medicine":     {"Medicine", "Prescription"},
	"Visit":        {"Visit", "Prescription"},
	"Prescription": {"Prescription"},
}

// fromAndChosen draws the predicate columns and a FROM set covering
// them (with a unique query root). Extracted so the plain-SPJ and the
// aggregate generators share it; rng consumption is unchanged for the
// plain path.
func (g *queryGen) fromAndChosen() (chosen []genCol, fromList []string) {
	cols := g.cols()
	nPreds := 1 + g.rng.Intn(3)
	chosenSet := map[string]genCol{}
	for len(chosenSet) < nPreds {
		c := cols[g.rng.Intn(len(cols))]
		chosenSet[c.table+"."+c.column] = c
	}
	// Iterate the chosen set in a fixed order: map iteration order must
	// not decide how the seeded rng stream is consumed, or the "random"
	// query sequence differs between runs of the same seed.
	keys := make([]string, 0, len(chosenSet))
	for k := range chosenSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	chosen = make([]genCol, len(keys))
	for i, k := range keys {
		chosen[i] = chosenSet[k]
	}

	// FROM: every predicate table, plus enough ancestors to give the
	// set a unique query root (include each table's full climbing path
	// up to the deepest common root: simplest is to add Prescription's
	// path pieces as needed — here, include every table on every
	// chosen table's path with probability, and always the unique
	// shallowest covering table).
	from := map[string]bool{}
	for _, c := range chosen {
		for _, t := range pathTables[c.table] {
			// Always include the predicate table; include intermediate
			// path tables sometimes (they are implied joins anyway).
			if t == c.table || g.rng.Intn(2) == 0 {
				from[t] = true
			}
		}
	}
	// Guarantee a root: if more than one table, include the schema root
	// unless all chosen tables live on one path with a natural root.
	if len(from) > 1 {
		from["Prescription"] = true
	}

	for _, t := range []string{"Prescription", "Visit", "Medicine", "Doctor", "Patient"} {
		if from[t] {
			fromList = append(fromList, t)
		}
	}
	return chosen, fromList
}

// wherePreds renders the WHERE conjuncts for the chosen columns.
func (g *queryGen) wherePreds(chosen []genCol) []string {
	var preds []string
	for _, c := range chosen {
		lit := c.literal(g)
		var expr string
		switch op := g.rng.Intn(6); {
		case op == 0:
			expr = fmt.Sprintf("%s.%s = %s", c.table, c.column, lit)
		case op == 1:
			expr = fmt.Sprintf("%s.%s <> %s", c.table, c.column, lit)
		case op < 4 && c.ordered:
			expr = fmt.Sprintf("%s.%s >= %s", c.table, c.column, lit)
		case op == 4 && c.ordered:
			expr = fmt.Sprintf("%s.%s < %s", c.table, c.column, lit)
		case op == 5 && c.ordered:
			expr = fmt.Sprintf("%s.%s BETWEEN %s AND %s", c.table, c.column, lit, c.literal(g))
		default:
			expr = fmt.Sprintf("%s.%s = %s", c.table, c.column, lit)
		}
		preds = append(preds, expr)
	}
	return preds
}

// next produces one random plain SPJ query.
func (g *queryGen) next() string {
	chosen, fromList := g.fromAndChosen()

	// Projections: 1-3 random columns from FROM tables (plus the root
	// key for stable comparison).
	root := fromList[0]
	projs := []string{root + "." + g.ds.Table(root).Columns[0]}
	for i := 0; i < g.rng.Intn(3); i++ {
		t := fromList[g.rng.Intn(len(fromList))]
		tb := g.ds.Table(t)
		projs = append(projs, t+"."+tb.Columns[g.rng.Intn(len(tb.Columns))])
	}

	preds := g.wherePreds(chosen)

	sql := "SELECT " + join(projs, ", ") + " FROM " + join(fromList, ", ")
	if len(preds) > 0 {
		sql += " WHERE " + join(preds, " AND ")
	}
	return sql
}

// fromCols returns the generator columns that live on FROM tables.
func (g *queryGen) fromCols(fromList []string) []genCol {
	inFrom := map[string]bool{}
	for _, t := range fromList {
		inFrom[t] = true
	}
	var out []genCol
	for _, c := range g.cols() {
		if inFrom[c.table] {
			out = append(out, c)
		}
	}
	return out
}

// nextPostOp produces one random query exercising the post-operator
// dialect: GROUP BY + aggregates (with optional HAVING), ORDER BY over
// plain projections, or DISTINCT — each with optional ordering/limits.
func (g *queryGen) nextPostOp() string {
	chosen, fromList := g.fromAndChosen()
	avail := g.fromCols(fromList)
	switch g.rng.Intn(5) {
	case 0:
		return g.genOrderBy(chosen, fromList, avail)
	case 1:
		return g.genDistinct(chosen, fromList, avail)
	default:
		return g.genAggregate(chosen, fromList, avail)
	}
}

// aggExprs draws 1-2 aggregate expressions over the available columns.
func (g *queryGen) aggExprs(avail []genCol) []string {
	var intCols []genCol
	for _, c := range avail {
		if c.kind == "int" {
			intCols = append(intCols, c)
		}
	}
	n := 1 + g.rng.Intn(2)
	var out []string
	for i := 0; i < n; i++ {
		switch pick := g.rng.Intn(4); {
		case pick == 0 || len(intCols) == 0 && pick < 2:
			out = append(out, "COUNT(*)")
		case pick == 1:
			c := intCols[g.rng.Intn(len(intCols))]
			fn := []string{"SUM", "AVG"}[g.rng.Intn(2)]
			out = append(out, fmt.Sprintf("%s(%s.%s)", fn, c.table, c.column))
		default:
			c := avail[g.rng.Intn(len(avail))]
			fn := []string{"MIN", "MAX"}[g.rng.Intn(2)]
			out = append(out, fmt.Sprintf("%s(%s.%s)", fn, c.table, c.column))
		}
	}
	return out
}

// genAggregate renders a GROUP BY / global aggregate query.
func (g *queryGen) genAggregate(chosen []genCol, fromList []string, avail []genCol) string {
	// 0-2 grouping columns (0 = global aggregate).
	nGroup := g.rng.Intn(3)
	var groupCols []genCol
	seen := map[string]bool{}
	for len(groupCols) < nGroup {
		c := avail[g.rng.Intn(len(avail))]
		k := c.table + "." + c.column
		if seen[k] {
			nGroup-- // tiny pool; settle for fewer
			continue
		}
		seen[k] = true
		groupCols = append(groupCols, c)
	}

	var items []string
	for _, c := range groupCols {
		items = append(items, c.table+"."+c.column)
	}
	items = append(items, g.aggExprs(avail)...)

	preds := g.wherePreds(chosen)
	sql := "SELECT " + join(items, ", ") + " FROM " + join(fromList, ", ")
	if len(preds) > 0 {
		sql += " WHERE " + join(preds, " AND ")
	}
	if len(groupCols) > 0 {
		var keys []string
		for _, c := range groupCols {
			keys = append(keys, c.table+"."+c.column)
		}
		sql += " GROUP BY " + join(keys, ", ")
	}
	if g.rng.Intn(3) == 0 {
		sql += fmt.Sprintf(" HAVING COUNT(*) %s %d",
			[]string{">", ">=", "<=", "<>"}[g.rng.Intn(4)], g.rng.Intn(4))
	}
	if g.rng.Intn(2) == 0 {
		var keys []string
		// Order by an output ordinal and/or an aggregate.
		if g.rng.Intn(2) == 0 {
			keys = append(keys, fmt.Sprintf("%d%s", 1+g.rng.Intn(len(items)), g.desc()))
		}
		keys = append(keys, "COUNT(*)"+g.desc())
		sql += " ORDER BY " + join(keys, ", ")
		if g.rng.Intn(2) == 0 {
			sql += fmt.Sprintf(" LIMIT %d", g.limitN(5))
		}
	}
	return sql
}

// genOrderBy renders a plain projection query with ORDER BY (and
// sometimes a LIMIT turning the sort into a top-K).
func (g *queryGen) genOrderBy(chosen []genCol, fromList []string, avail []genCol) string {
	root := fromList[0]
	projs := []string{root + "." + g.ds.Table(root).Columns[0]}
	for i := 0; i < 1+g.rng.Intn(2); i++ {
		c := avail[g.rng.Intn(len(avail))]
		projs = append(projs, c.table+"."+c.column)
	}
	preds := g.wherePreds(chosen)
	sql := "SELECT " + join(projs, ", ") + " FROM " + join(fromList, ", ")
	if len(preds) > 0 {
		sql += " WHERE " + join(preds, " AND ")
	}
	var keys []string
	// Sort by a (possibly unselected) column, with the root key as the
	// final tiebreak so the expected order is total.
	c := avail[g.rng.Intn(len(avail))]
	keys = append(keys, c.table+"."+c.column+g.desc())
	if g.rng.Intn(2) == 0 {
		keys = append(keys, fmt.Sprintf("%d%s", 1+g.rng.Intn(len(projs)), g.desc()))
	}
	keys = append(keys, projs[0])
	sql += " ORDER BY " + join(keys, ", ")
	if g.rng.Intn(2) == 0 {
		sql += fmt.Sprintf(" LIMIT %d", g.limitN(8))
	}
	return sql
}

// genDistinct renders a DISTINCT projection query.
func (g *queryGen) genDistinct(chosen []genCol, fromList []string, avail []genCol) string {
	var projs []string
	seen := map[string]bool{}
	for len(projs) < 1+g.rng.Intn(2) {
		c := avail[g.rng.Intn(len(avail))]
		k := c.table + "." + c.column
		if seen[k] {
			continue
		}
		seen[k] = true
		projs = append(projs, k)
	}
	preds := g.wherePreds(chosen)
	sql := "SELECT DISTINCT " + join(projs, ", ") + " FROM " + join(fromList, ", ")
	if len(preds) > 0 {
		sql += " WHERE " + join(preds, " AND ")
	}
	if g.rng.Intn(2) == 0 {
		// DISTINCT ordering keys must be selected: order by every
		// projection so ties cannot make the expected order ambiguous.
		var keys []string
		for _, p := range projs {
			keys = append(keys, p+g.desc())
		}
		sql += " ORDER BY " + join(keys, ", ")
		if g.rng.Intn(2) == 0 {
			sql += fmt.Sprintf(" LIMIT %d", g.limitN(5))
		}
	}
	return sql
}

// limitN draws a LIMIT count in [0, max]: 0 (the standard zero-row
// probe) appears in the corpus alongside real top-K limits.
func (g *queryGen) limitN(max int) int { return g.rng.Intn(max + 1) }

func (g *queryGen) desc() string {
	if g.rng.Intn(2) == 0 {
		return " DESC"
	}
	return ""
}

func join(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

// TestPropertyRandomQueriesAllPlans is the heavyweight equivalence
// property: for dozens of random queries, every enumerated plan must
// match the oracle, stay within the RAM budget, and leak nothing.
func TestPropertyRandomQueriesAllPlans(t *testing.T) {
	db, orc, ds := loadTiny(t, WithCapture(trace.CaptureFull))
	g := &queryGen{rng: rand.New(rand.NewSource(7)), ds: ds}

	iterations := 60
	if testing.Short() {
		iterations = 15
	}
	for i := 0; i < iterations; i++ {
		sqlText := g.next()
		q, err := db.Prepare(sqlText)
		if err != nil {
			t.Fatalf("query %d %q: %v", i, sqlText, err)
		}
		_, wantRows, err := orc.Query(sqlText)
		if err != nil {
			t.Fatalf("oracle %d %q: %v", i, sqlText, err)
		}
		for _, spec := range db.Plans(q) {
			res, err := db.QueryWithPlan(q, spec)
			if err != nil {
				t.Fatalf("query %d %q / %s: %v", i, sqlText, spec.Describe(q), err)
			}
			if !sameRows(res.Rows, wantRows) {
				t.Fatalf("query %d %q / %s: %d rows, oracle %d",
					i, sqlText, spec.Describe(q), len(res.Rows), len(wantRows))
			}
			if res.Report.RAMHigh > db.Device().RAM.Budget() {
				t.Fatalf("query %d %q / %s: RAM %d over budget",
					i, sqlText, spec.Describe(q), res.Report.RAMHigh)
			}
		}
	}
	// One audit over the whole session's traffic.
	leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("random query session leaked: %v", leaks[0])
	}
	// And the one-way invariant.
	for _, e := range db.Recorder().Events() {
		if e.From == trace.Device && e.To != trace.Display {
			t.Fatalf("device sent %s to %s", e.Kind, e.To)
		}
	}
}

// TestPropertyAggregateOracleDifferential is the post-operator
// differential property: a randomized corpus of aggregate / GROUP BY /
// HAVING / ORDER BY / DISTINCT queries, every one checked exactly
// (columns, values, row order) against two independent references —
// the in-memory oracle's map-based evaluator, and the baseline
// package's sort-based finisher applied to the oracle's physical rows.
func TestPropertyAggregateOracleDifferential(t *testing.T) {
	db, orc, ds := loadTiny(t, WithCapture(trace.CaptureFull))
	g := &queryGen{rng: rand.New(rand.NewSource(29)), ds: ds}

	iterations := 500
	if testing.Short() {
		iterations = 60
	}
	for i := 0; i < iterations; i++ {
		sqlText := g.nextPostOp()
		wantCols, wantRows, err := orc.Query(sqlText)
		if err != nil {
			t.Fatalf("oracle %d %q: %v", i, sqlText, err)
		}
		res, err := db.Query(sqlText)
		if err != nil {
			t.Fatalf("engine %d %q: %v", i, sqlText, err)
		}
		if !reflect.DeepEqual(res.Columns, wantCols) {
			t.Fatalf("query %d %q: columns %v, want %v", i, sqlText, res.Columns, wantCols)
		}
		if !sameRows(res.Rows, wantRows) {
			t.Fatalf("query %d %q / %s: engine %d rows, oracle %d\nfirst got: %v\nfirst want: %v",
				i, sqlText, res.Spec.Label, len(res.Rows), len(wantRows), head(res.Rows), head(wantRows))
		}
		// Second reference: the sort-based finisher over the same base.
		q, base, err := orc.QueryBase(sqlText)
		if err != nil {
			t.Fatalf("oracle base %d %q: %v", i, sqlText, err)
		}
		if q.HasPostOps() {
			bRows, err := baseline.FinishNaive(q, base)
			if err != nil {
				t.Fatalf("baseline %d %q: %v", i, sqlText, err)
			}
			if !sameRows(res.Rows, bRows) {
				t.Fatalf("query %d %q: engine %d rows, baseline finisher %d",
					i, sqlText, len(res.Rows), len(bRows))
			}
		}
	}
	// Aggregation runs on the secure display: the whole session must
	// still leak nothing and keep the device's one-way invariant.
	leaks := trace.Audit(db.Recorder().Events(), db.HiddenValues().Contains)
	if len(leaks) != 0 {
		t.Fatalf("aggregate session leaked: %v", leaks[0])
	}
	for _, e := range db.Recorder().Events() {
		if e.From == trace.Device && e.To != trace.Display {
			t.Fatalf("device sent %s to %s", e.Kind, e.To)
		}
	}
}

// TestPropertyRandomQueriesTinyRAM repeats a smaller mix on a 16KB
// device, exercising the spill-everything paths.
func TestPropertyRandomQueriesTinyRAM(t *testing.T) {
	prof := SmallProfileForTest()
	db, orc, ds := loadTiny(t, WithProfile(prof))
	g := &queryGen{rng: rand.New(rand.NewSource(11)), ds: ds}
	iterations := 20
	if testing.Short() {
		iterations = 5
	}
	for i := 0; i < iterations; i++ {
		sqlText := g.next()
		checkAgainstOracle(t, db, orc, sqlText)
		if high := db.Device().RAM.High(); high > db.Device().RAM.Budget() {
			t.Fatalf("query %d %q: RAM %d over 16KB budget", i, sqlText, high)
		}
	}
}
