package core

import (
	"fmt"
	"sync"
	"testing"

	"github.com/ghostdb/ghostdb/internal/value"
)

// TestPlanCacheHitMiss pins the cache's accounting: first compilation of
// a shape misses, every repeat — same text, different whitespace or
// letter case — hits, and a different shape misses again.
func TestPlanCacheHitMiss(t *testing.T) {
	db, _, _ := loadTiny(t)
	const q = `SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'France'`
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after first query: %v", st)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}
	// Normalization: case and whitespace changes are the same shape.
	if _, err := db.Query("select   Doctor.DocID\nFROM Doctor WHERE Doctor.Country = 'France';"); err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("after repeats: %v", st)
	}
	// Different literal = different shape (no parameterization).
	if _, err := db.Query(`SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'Spain'`); err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	if st.Hits != 2 || st.Misses != 2 || st.Entries != 2 {
		t.Fatalf("after new shape: %v", st)
	}
	// String literals must not be case-folded by normalization.
	res, err := db.Query(`SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'FRANCE'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("'FRANCE' matched %d rows; literal was case-folded", len(res.Rows))
	}
}

// TestPlanCacheLRUEviction runs three shapes through a two-entry cache
// and checks the least recently used one is recompiled.
func TestPlanCacheLRUEviction(t *testing.T) {
	db, _, _ := loadTiny(t, WithPlanCacheSize(1))
	qa := `SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'France'`
	qb := `SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'Spain'`
	for _, q := range []string{qa, qb, qa} {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	st := db.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 3 {
		t.Fatalf("1-entry cache should evict on every alternation: %v", st)
	}
	if st.Evictions != 2 || st.Entries != 1 {
		t.Fatalf("evictions/entries: %v", st)
	}
	// The resident entry still hits.
	if _, err := db.Query(qa); err != nil {
		t.Fatal(err)
	}
	if st = db.PlanCacheStats(); st.Hits != 1 {
		t.Fatalf("resident entry should hit: %v", st)
	}
}

// TestPlanCacheDisabled checks a negative capacity turns caching off.
func TestPlanCacheDisabled(t *testing.T) {
	db, _, _ := loadTiny(t, WithPlanCacheSize(-1))
	const q = `SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'France'`
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if st := db.PlanCacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache recorded %v", st)
	}
}

// TestCompiledQueryParams checks the compile-once / bind-many / run-many
// path returns exactly what the literal path returns, for every binding.
func TestCompiledQueryParams(t *testing.T) {
	db, orc, _ := loadTiny(t)
	cq, err := db.Compile(`SELECT Visit.VisID FROM Visit WHERE Visit.Purpose = ?`)
	if err != nil {
		t.Fatal(err)
	}
	if cq.NumParams() != 1 {
		t.Fatalf("NumParams = %d, want 1", cq.NumParams())
	}
	for _, purpose := range []string{"Checkup", "Sclerosis", "Flu", "NoSuchPurpose"} {
		res, err := cq.Run([]value.Value{value.NewString(purpose)})
		if err != nil {
			t.Fatalf("Run(%q): %v", purpose, err)
		}
		lit := fmt.Sprintf(`SELECT Visit.VisID FROM Visit WHERE Visit.Purpose = '%s'`, purpose)
		_, wantRows, err := orc.Query(lit)
		if err != nil {
			t.Fatal(err)
		}
		if !sameRows(res.Rows, wantRows) {
			t.Fatalf("Run(%q) = %d rows, oracle %d", purpose, len(res.Rows), len(wantRows))
		}
	}
	// Arity is enforced.
	if _, err := cq.Run(nil); err == nil {
		t.Fatal("Run without params should fail")
	}
	if _, err := cq.Run([]value.Value{value.NewString("a"), value.NewString("b")}); err == nil {
		t.Fatal("Run with too many params should fail")
	}
	// The unbound shape refuses to execute directly.
	if _, err := db.QueryWithPlan(cq.Shape(), cq.Specs()[0]); err == nil {
		t.Fatal("QueryWithPlan on an unbound shape should fail")
	}
	// Date coercion at bind time: a BETWEEN over a DATE column accepts
	// string arguments and coerces them like date literals.
	cq2, err := db.Compile(`SELECT Visit.VisID FROM Visit WHERE Visit.Date BETWEEN ? AND ?`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cq2.Run([]value.Value{value.NewString("2000-01-01"), value.NewString("2020-12-31")})
	if err != nil {
		t.Fatal(err)
	}
	_, wantRows, err := orc.Query(`SELECT Visit.VisID FROM Visit WHERE Visit.Date BETWEEN '2000-01-01' AND '2020-12-31'`)
	if err != nil {
		t.Fatal(err)
	}
	if !sameRows(res.Rows, wantRows) {
		t.Fatalf("date params: %d rows, oracle %d", len(res.Rows), len(wantRows))
	}
}

// TestPlanCacheConcurrentBindings shares ONE cached compiled plan across
// 16 goroutines running different parameter bindings concurrently (run
// under -race in CI). Every goroutine must see its own binding's rows,
// never another goroutine's.
func TestPlanCacheConcurrentBindings(t *testing.T) {
	db, orc, _ := loadTiny(t)
	const shape = `SELECT Visit.VisID FROM Visit WHERE Visit.Purpose = ?`
	purposes := []string{"Checkup", "Sclerosis", "Flu", "Angina"}
	want := make(map[string]int)
	for _, p := range purposes {
		_, rows, err := orc.Query(fmt.Sprintf(`SELECT Visit.VisID FROM Visit WHERE Visit.Purpose = '%s'`, p))
		if err != nil {
			t.Fatal(err)
		}
		want[p] = len(rows)
	}

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sess, err := db.NewSession()
			if err != nil {
				errs <- err
				return
			}
			defer sess.Close()
			cq, err := sess.Compile(shape)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 6; i++ {
				p := purposes[(g+i)%len(purposes)]
				res, err := sess.QueryCompiled(cq, []value.Value{value.NewString(p)})
				if err != nil {
					errs <- fmt.Errorf("goroutine %d %q: %w", g, p, err)
					return
				}
				if len(res.Rows) != want[p] {
					errs <- fmt.Errorf("goroutine %d %q: %d rows, want %d", g, p, len(res.Rows), want[p])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// All 16 sessions compiled the same shape. Compilation is not
	// single-flighted (a benign duplicate compile loses no correctness),
	// so concurrent first lookups may each miss — but one entry remains
	// and the traffic must add up.
	st := db.PlanCacheStats()
	if st.Misses < 1 || st.Hits+st.Misses != goroutines {
		t.Fatalf("cache traffic: %v", st)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// TestSessionPlanCacheCounters checks per-session hit/miss attribution.
func TestSessionPlanCacheCounters(t *testing.T) {
	db, _, _ := loadTiny(t)
	s1, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2, err := db.NewSession()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	const q = `SELECT Doctor.DocID FROM Doctor WHERE Doctor.Country = 'France'`
	if _, err := s1.Query(q); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Query(q); err != nil {
		t.Fatal(err)
	}
	if st := s1.Stats().PlanCache; st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("s1: %v", st)
	}
	if st := s2.Stats().PlanCache; st.Misses != 0 || st.Hits != 1 {
		t.Fatalf("s2: %v", st)
	}
}

// TestNormalizeSQL pins the cache key normalization rules.
func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM T;", "select * from t"},
		{"  select\t*\n from  T ", "select * from t"},
		{"SELECT 'It''s A Mix' FROM T", "select 'It''s A Mix' from t"},
		{`SELECT "Quoted Name" FROM T`, `select "Quoted Name" from t`},
		{"SELECT X FROM T WHERE A = ?", "select x from t where a = ?"},
	}
	for _, c := range cases {
		if got := normalizeSQL(c.in); got != c.want {
			t.Errorf("normalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}
