package core

import (
	"context"
	"errors"
	"log/slog"
	"time"
)

// QueryPhase tags a QueryEvent.
type QueryPhase int

const (
	// QueryStart fires before execution (Wall/Sim/Rows are zero).
	QueryStart QueryPhase = iota
	// QueryFinish fires after a successful execution.
	QueryFinish
	// QueryError fires after a failed execution (Err is set; a canceled
	// context reports context.Canceled or context.DeadlineExceeded).
	QueryError
)

// String names the phase for structured logging.
func (p QueryPhase) String() string {
	switch p {
	case QueryStart:
		return "start"
	case QueryFinish:
		return "finish"
	case QueryError:
		return "error"
	default:
		return "unknown"
	}
}

// QueryEvent is one tracing notification. Events fire on the querying
// goroutine, outside the device gate, so a slow hook delays only its
// own query.
type QueryEvent struct {
	Phase     QueryPhase
	SQL       string        // original query text
	PlanLabel string        // chosen plan (finish only; "" before planning)
	Wall      time.Duration // host wall-clock, including device-gate wait
	Sim       time.Duration // simulated device time the query consumed
	Rows      int           // result rows (finish only)
	Err       error         // error/cancellation cause (error phase only)
}

// QueryHook observes query execution (see WithQueryHook). Hooks must be
// safe for concurrent use: sessions on different goroutines fire them
// concurrently.
type QueryHook func(QueryEvent)

// SlowQueryHook returns a built-in hook that logs a structured slog
// warning for every query whose wall-clock latency is at least min, and
// an error-level record for every failed query. A nil logger uses
// slog.Default(). Start events are ignored.
func SlowQueryHook(min time.Duration, lg *slog.Logger) QueryHook {
	if lg == nil {
		lg = slog.Default()
	}
	return func(ev QueryEvent) {
		switch ev.Phase {
		case QueryError:
			lg.Error("ghostdb query failed",
				"sql", ev.SQL,
				"wall", ev.Wall,
				"err", ev.Err)
		case QueryFinish:
			if ev.Wall >= min {
				lg.Warn("ghostdb slow query",
					"sql", ev.SQL,
					"plan", ev.PlanLabel,
					"wall", ev.Wall,
					"sim", ev.Sim,
					"rows", ev.Rows)
			}
		}
	}
}

// fireHooks dispatches one event to every registered hook.
func (db *DB) fireHooks(ev QueryEvent) {
	for _, h := range db.hooks {
		h(ev)
	}
}

// observeQuery feeds one finished query into the DB and session
// registries and fires the tracing hooks. wall is host time measured
// from before the device-gate wait; rep may be nil on error.
func (db *DB) observeQuery(s *Session, sqlText, planLabel string, wall time.Duration, sim time.Duration, rows int, err error) {
	m := db.metrics
	var sm *engineMetrics
	if s != nil {
		sm = s.metrics
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if m != nil {
				m.queriesCanceled.Inc()
			}
			if sm != nil {
				sm.queriesCanceled.Inc()
			}
		}
		if m != nil {
			m.queryErrors.Inc()
		}
		if sm != nil {
			sm.queryErrors.Inc()
		}
		if len(db.hooks) > 0 {
			db.fireHooks(QueryEvent{Phase: QueryError, SQL: sqlText, Wall: wall, Err: err})
		}
		return
	}
	slow := db.opts.SlowQueryThreshold > 0 && wall >= db.opts.SlowQueryThreshold
	if m != nil {
		m.queries.Inc()
		m.rowsReturned.Add(int64(rows))
		m.queryWall.Observe(wall.Nanoseconds())
		m.querySim.Observe(sim.Nanoseconds())
		if slow {
			m.slowQueries.Inc()
		}
	}
	if sm != nil {
		sm.queries.Inc()
		sm.rowsReturned.Add(int64(rows))
		sm.queryWall.Observe(wall.Nanoseconds())
		sm.querySim.Observe(sim.Nanoseconds())
		if slow {
			sm.slowQueries.Inc()
		}
	}
	if len(db.hooks) > 0 {
		db.fireHooks(QueryEvent{
			Phase:     QueryFinish,
			SQL:       sqlText,
			PlanLabel: planLabel,
			Wall:      wall,
			Sim:       sim,
			Rows:      rows,
		})
	}
}
