package core

import (
	"container/list"
	"strings"
	"sync"

	"github.com/ghostdb/ghostdb/internal/stats"
)

// planCache is a size-bounded, mutex-sharded LRU of compiled queries,
// keyed by normalized SQL text. Compilation (parse, bind, enumerate) is
// pure host-side work over the frozen schema, so cached entries never go
// stale: the schema cannot change after the bulk load. Sharding keeps
// concurrent sessions from serializing on one lock for what is meant to
// be the scalable half of the engine.
type planCache struct {
	shards []planCacheShard
}

type planCacheShard struct {
	mu        sync.Mutex
	cap       int
	entries   map[string]*list.Element // key -> lru element (value *planCacheEntry)
	lru       *list.List               // front = most recently used
	hits      int64
	misses    int64
	evictions int64
}

type planCacheEntry struct {
	key string
	val any // *CompiledQuery or *CompiledDML
}

// newPlanCache builds a cache holding at most capacity entries split
// over up to 8 shards. A capacity <= 0 disables caching entirely.
func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		return &planCache{}
	}
	shards := min(8, capacity)
	c := &planCache{shards: make([]planCacheShard, shards)}
	for i := range c.shards {
		per := capacity / shards
		if i < capacity%shards {
			per++
		}
		c.shards[i] = planCacheShard{cap: per, entries: map[string]*list.Element{}, lru: list.New()}
	}
	return c
}

func (c *planCache) shard(key string) *planCacheShard {
	if len(c.shards) == 0 {
		return nil
	}
	// FNV-1a over the key; cheap and stable.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

// get returns the cached compilation for key (a *CompiledQuery or
// *CompiledDML), marking it most recently used. The second result
// reports whether the lookup hit.
func (c *planCache) get(key string) (any, bool) {
	s := c.shard(key)
	if s == nil {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.lru.MoveToFront(el)
	return el.Value.(*planCacheEntry).val, true
}

// enabled reports whether the cache actually stores plans (a zero or
// negative capacity builds a shardless, always-miss cache).
func (c *planCache) enabled() bool { return c != nil && len(c.shards) > 0 }

// noteHit records a cache hit that was served above the cache (a
// session's last-compile memo), keeping the DB-level hit counters a
// superset of per-session hit accounting.
func (c *planCache) noteHit() {
	if !c.enabled() {
		return
	}
	s := &c.shards[0]
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
}

// put inserts a compilation, evicting the least recently used entry of
// the shard when it is full. Re-inserting an existing key refreshes it.
func (c *planCache) put(key string, val any) {
	s := c.shard(key)
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		el.Value.(*planCacheEntry).val = val
		s.lru.MoveToFront(el)
		return
	}
	for s.lru.Len() >= s.cap {
		oldest := s.lru.Back()
		if oldest == nil {
			break
		}
		s.lru.Remove(oldest)
		delete(s.entries, oldest.Value.(*planCacheEntry).key)
		s.evictions++
	}
	s.entries[key] = s.lru.PushFront(&planCacheEntry{key: key, val: val})
}

// stats sums the per-shard counters.
func (c *planCache) stats() stats.CacheStats {
	var out stats.CacheStats
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out = out.Add(stats.CacheStats{Hits: s.hits, Misses: s.misses, Evictions: s.evictions, Entries: s.lru.Len()})
		s.mu.Unlock()
	}
	return out
}

// normalizeSQL canonicalizes a query's text into its cache key: letters
// outside quoted strings are lowercased, runs of whitespace collapse to
// one space, and a trailing semicolon is dropped. Literal values stay in
// the key — two queries differing only in literals are different shapes
// to the cache; placeholders are what makes a shape reusable.
func normalizeSQL(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	space := false
	for i := 0; i < len(text); i++ {
		c := text[i]
		switch {
		case c == '\'' || c == '"':
			// Copy the quoted string verbatim (SQL doubles '' to escape).
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			quote := c
			b.WriteByte(c)
			i++
			for i < len(text) {
				b.WriteByte(text[i])
				if text[i] == quote {
					if quote == '\'' && i+1 < len(text) && text[i+1] == '\'' {
						i++
						b.WriteByte('\'')
					} else {
						break
					}
				}
				i++
			}
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			space = true
		default:
			if space && b.Len() > 0 {
				b.WriteByte(' ')
			}
			space = false
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
	}
	return strings.TrimSuffix(b.String(), ";")
}
