package stats

import (
	"strings"
	"testing"
	"time"
)

func TestOpCounters(t *testing.T) {
	op := &Op{Name: "Translate", Detail: "Visit->Prescription"}
	op.AddIn(10)
	op.AddIn(5)
	op.AddOut(7)
	op.NoteRAM(100)
	op.NoteRAM(50) // lower value must not shrink the peak
	op.AddTime(2 * time.Millisecond)
	op.AddTime(time.Millisecond)
	if op.TuplesIn != 15 || op.TuplesOut != 7 {
		t.Errorf("counters %+v", op)
	}
	if op.RAMBytes != 100 {
		t.Errorf("RAM peak %d", op.RAMBytes)
	}
	if op.Time != 3*time.Millisecond {
		t.Errorf("time %v", op.Time)
	}
	s := op.String()
	for _, want := range []string{"Translate(Visit->Prescription)", "in=15", "out=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNilOpSafe(t *testing.T) {
	var op *Op
	op.AddIn(1)
	op.AddOut(1)
	op.NoteRAM(1)
	op.AddTime(time.Second)
}

func TestReport(t *testing.T) {
	r := &Report{Query: "SELECT 1", PlanLabel: "P1", TotalTime: time.Second,
		RAMHigh: 4096, BusBytes: 1 << 20, BusMsgs: 3, ResultRows: 42}
	op := r.NewOp("Store", "")
	op.AddIn(10)
	if len(r.Ops) != 1 {
		t.Fatalf("ops = %d", len(r.Ops))
	}
	s := r.String()
	for _, want := range []string{"P1", "42 rows", "4.0KB", "1.0MB", "Store"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		1536:    "1.5KB",
		3 << 20: "3.0MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2 * time.Millisecond:    "2.00ms",
		1500 * time.Millisecond: "1.500s",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

// TestFormatBytesBoundaries pins the unit transitions exactly: each
// formatter must switch units at the binary power, not one off.
func TestFormatBytesBoundaries(t *testing.T) {
	cases := map[int64]string{
		1<<10 - 1: "1023B",
		1 << 10:   "1.0KB",
		1<<20 - 1: "1024.0KB",
		1 << 20:   "1.0MB",
		1<<30 - 1: "1024.0MB",
		1 << 30:   "1.00GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDurationBoundaries(t *testing.T) {
	cases := map[time.Duration]string{
		0:                     "0ns",
		999 * time.Nanosecond: "999ns",
		time.Microsecond:      "1.0µs",
		time.Millisecond:      "1.00ms",
		time.Second:           "1.000s",
		90 * time.Second:      "90.000s",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestCacheStats(t *testing.T) {
	var zero CacheStats
	if r := zero.HitRate(); r != 0 {
		t.Errorf("zero HitRate = %v, want 0", r)
	}
	c := CacheStats{Hits: 3, Misses: 1, Evictions: 2, Entries: 5}
	if r := c.HitRate(); r != 0.75 {
		t.Errorf("HitRate = %v, want 0.75", r)
	}
	sum := c.Add(CacheStats{Hits: 1, Misses: 3, Evictions: 1, Entries: 2})
	want := CacheStats{Hits: 4, Misses: 4, Evictions: 3, Entries: 7}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
	if s := c.String(); s != "hits=3 misses=1 evictions=2 entries=5 (75.0% hit rate)" {
		t.Errorf("String = %q", s)
	}
}
