package stats

import (
	"strings"
	"testing"
	"time"
)

func TestOpCounters(t *testing.T) {
	op := &Op{Name: "Translate", Detail: "Visit->Prescription"}
	op.AddIn(10)
	op.AddIn(5)
	op.AddOut(7)
	op.NoteRAM(100)
	op.NoteRAM(50) // lower value must not shrink the peak
	op.AddTime(2 * time.Millisecond)
	op.AddTime(time.Millisecond)
	if op.TuplesIn != 15 || op.TuplesOut != 7 {
		t.Errorf("counters %+v", op)
	}
	if op.RAMBytes != 100 {
		t.Errorf("RAM peak %d", op.RAMBytes)
	}
	if op.Time != 3*time.Millisecond {
		t.Errorf("time %v", op.Time)
	}
	s := op.String()
	for _, want := range []string{"Translate(Visit->Prescription)", "in=15", "out=7"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestNilOpSafe(t *testing.T) {
	var op *Op
	op.AddIn(1)
	op.AddOut(1)
	op.NoteRAM(1)
	op.AddTime(time.Second)
}

func TestReport(t *testing.T) {
	r := &Report{Query: "SELECT 1", PlanLabel: "P1", TotalTime: time.Second,
		RAMHigh: 4096, BusBytes: 1 << 20, BusMsgs: 3, ResultRows: 42}
	op := r.NewOp("Store", "")
	op.AddIn(10)
	if len(r.Ops) != 1 {
		t.Fatalf("ops = %d", len(r.Ops))
	}
	s := r.String()
	for _, want := range []string{"P1", "42 rows", "4.0KB", "1.0MB", "Store"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := map[int64]string{
		0:       "0B",
		512:     "512B",
		1536:    "1.5KB",
		3 << 20: "3.0MB",
		5 << 30: "5.00GB",
	}
	for in, want := range cases {
		if got := FormatBytes(in); got != want {
			t.Errorf("FormatBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Nanosecond:   "500ns",
		1500 * time.Nanosecond:  "1.5µs",
		2 * time.Millisecond:    "2.00ms",
		1500 * time.Millisecond: "1.500s",
	}
	for in, want := range cases {
		if got := FormatDuration(in); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", in, got, want)
		}
	}
}
