// Package stats collects per-operator and per-plan execution metrics —
// the numbers behind the demo GUI's operator popups ("number of processed
// tuples, local RAM consumption and processing time", Section 5) and the
// plan comparison bars of Figure 6.
package stats

import (
	"fmt"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb/internal/flash"
)

// Op is one operator's counters.
type Op struct {
	Name      string
	Detail    string
	TuplesIn  int64
	TuplesOut int64
	RAMBytes  int64         // peak RAM attributable to the operator
	Time      time.Duration // simulated device time in the operator's phase
}

// AddIn increments the input tuple counter.
func (o *Op) AddIn(n int64) {
	if o != nil {
		o.TuplesIn += n
	}
}

// AddOut increments the output tuple counter.
func (o *Op) AddOut(n int64) {
	if o != nil {
		o.TuplesOut += n
	}
}

// NoteRAM records a RAM level if it exceeds the operator's current peak.
func (o *Op) NoteRAM(bytes int64) {
	if o != nil && bytes > o.RAMBytes {
		o.RAMBytes = bytes
	}
}

// AddTime accumulates simulated time.
func (o *Op) AddTime(d time.Duration) {
	if o != nil {
		o.Time += d
	}
}

// String renders the operator like the demo's popup line.
func (o *Op) String() string {
	return fmt.Sprintf("%-26s in=%-9d out=%-9d ram=%-8s t=%s",
		nameDetail(o.Name, o.Detail), o.TuplesIn, o.TuplesOut,
		FormatBytes(o.RAMBytes), FormatDuration(o.Time))
}

func nameDetail(name, detail string) string {
	if detail == "" {
		return name
	}
	return name + "(" + detail + ")"
}

// Report aggregates one query execution.
type Report struct {
	Query      string
	PlanLabel  string
	Ops        []*Op
	TotalTime  time.Duration // simulated end-to-end time
	RAMHigh    int64         // device arena high-water mark
	Flash      flash.Stats   // flash ops attributable to the query
	BusBytes   int64         // bytes that crossed the terminal<->device wire
	BusMsgs    int64
	ResultRows int

	// block backs the first opBlockSize ops in one allocation. Ops are
	// only appended while len < cap, so the returned pointers stay valid.
	block []Op
}

// opBlockSize covers a typical query's operator count in one allocation.
const opBlockSize = 16

// NewOp registers a new operator in the report and returns it.
func (r *Report) NewOp(name, detail string) *Op {
	if r.block == nil {
		r.block = make([]Op, 0, opBlockSize)
		r.Ops = make([]*Op, 0, opBlockSize)
	}
	var op *Op
	if len(r.block) < cap(r.block) {
		r.block = append(r.block, Op{Name: name, Detail: detail})
		op = &r.block[len(r.block)-1]
	} else {
		op = &Op{Name: name, Detail: detail}
	}
	r.Ops = append(r.Ops, op)
	return op
}

// String renders the full report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s: %d rows in %s (device RAM peak %s, bus %s in %d msgs)\n",
		r.PlanLabel, r.ResultRows, FormatDuration(r.TotalTime),
		FormatBytes(r.RAMHigh), FormatBytes(r.BusBytes), r.BusMsgs)
	fmt.Fprintf(&b, "flash: %d page reads, %d pages programmed, %d erases\n",
		r.Flash.PageReads, r.Flash.PagesProgrammed, r.Flash.BlockErases)
	for _, op := range r.Ops {
		b.WriteString("  ")
		b.WriteString(op.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// CacheStats is a snapshot of a cache's effectiveness counters (the plan
// cache reports these; other host-side caches may reuse the type).
type CacheStats struct {
	Hits      int64 // lookups served from the cache
	Misses    int64 // lookups that had to do the work
	Evictions int64 // entries dropped by the LRU policy
	Entries   int   // entries currently resident
}

// Add returns the element-wise sum of two snapshots (used to merge
// per-shard counters).
func (c CacheStats) Add(o CacheStats) CacheStats {
	return CacheStats{
		Hits:      c.Hits + o.Hits,
		Misses:    c.Misses + o.Misses,
		Evictions: c.Evictions + o.Evictions,
		Entries:   c.Entries + o.Entries,
	}
}

// HitRate reports hits / lookups, or 0 with no lookups.
func (c CacheStats) HitRate() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// String renders the counters compactly.
func (c CacheStats) String() string {
	return fmt.Sprintf("hits=%d misses=%d evictions=%d entries=%d (%.1f%% hit rate)",
		c.Hits, c.Misses, c.Evictions, c.Entries, 100*c.HitRate())
}

// FormatBytes renders a byte count with a binary unit.
func FormatBytes(n int64) string {
	switch {
	case n < 1<<10:
		return fmt.Sprintf("%dB", n)
	case n < 1<<20:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	case n < 1<<30:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.2fGB", float64(n)/(1<<30))
	}
}

// FormatDuration renders a simulated duration compactly.
func FormatDuration(d time.Duration) string {
	switch {
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}
