package ghostdb_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb"
)

// TestFaultMetricsEndpoints drives a fault plan through the public API
// and checks that every fault/recovery metric reaches both exposition
// formats of the debug endpoint.
func TestFaultMetricsEndpoints(t *testing.T) {
	plan, err := ghostdb.ParseFaultPlan("seed=11,read.transient=0.1,bus.transient=0.1")
	if err != nil {
		t.Fatal(err)
	}
	db := openDebugDB(t, ghostdb.WithFaultPlan(plan))
	for i := 0; i < 5; i++ {
		if _, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`); err != nil {
			t.Fatal(err)
		}
	}

	// A full snapshot/recover cycle so recoveries_total counts on the
	// recovered instance's registry.
	snap, err := db.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	rdb, info, err := ghostdb.Recover(snap)
	if err != nil {
		t.Fatal(err)
	}
	defer rdb.Close()
	if info.Version != 0 || info.RolledBack {
		t.Fatalf("info = %+v, want clean version 0", info)
	}

	addr, stop, err := ghostdb.ServeDebug("127.0.0.1:0", rdb)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	get := func(path string) string {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	var doc struct {
		Metrics map[string]json.RawMessage `json:"metrics"`
	}
	body := get("/debug/vars")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	for _, name := range []string{
		"faults_injected_total", "faults_retried_total",
		"checksum_failures_total", "recoveries_total", "recovery_wall_ns",
	} {
		if _, ok := doc.Metrics[name]; !ok {
			t.Errorf("/debug/vars lacks %s:\n%s", name, body)
		}
	}
	var recoveries int64
	if err := json.Unmarshal(doc.Metrics["recoveries_total"], &recoveries); err != nil || recoveries != 1 {
		t.Fatalf("recoveries_total = %s, want 1", doc.Metrics["recoveries_total"])
	}

	prom := get("/metrics")
	for _, want := range []string{
		"# TYPE ghostdb_faults_injected_total counter",
		"# TYPE ghostdb_recoveries_total counter",
		"ghostdb_recoveries_total 1",
		"# TYPE ghostdb_recovery_wall_ns histogram",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The original faulty instance's own registry counted the injections.
	snapM := db.MetricsSnapshot()
	inj, ok := snapM.Get("faults_injected_total")
	if !ok || inj.Value == 0 {
		t.Fatalf("faults_injected_total = %+v, want > 0", inj)
	}
	ret, ok := snapM.Get("faults_retried_total")
	if !ok || ret.Value == 0 {
		t.Fatalf("faults_retried_total = %+v, want > 0", ret)
	}
}
