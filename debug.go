package ghostdb

// The live debug endpoint: an expvar-style HTTP surface over one DB's
// observability state, built purely on net/http. Two views of the same
// registry — machine-friendly JSON at /debug/vars (the expvar
// convention) and Prometheus text exposition at /metrics — plus the
// plan-cache and delta/checkpoint summaries, so a dashboard or a curl
// can watch a live engine without linking any client library.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
)

// DebugHandler returns an http.Handler exposing db's live state:
//
//	/debug/vars   JSON: metrics registry, plan cache, delta, sessions
//	/metrics      Prometheus text exposition (metrics ghostdb_*)
//
// Snapshots are taken per request; the handler never blocks queries.
func DebugHandler(db *DB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(debugVars(db))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		db.MetricsSnapshot().WritePrometheus(w, "ghostdb_")
		for i, snap := range db.ShardMetrics() {
			snap.WritePrometheus(w, fmt.Sprintf("ghostdb_shard%d_", i))
		}
	})
	return mux
}

// debugVars assembles the JSON document served at /debug/vars.
func debugVars(db *DB) map[string]any {
	doc := map[string]any{
		"plan_cache": db.PlanCacheStats(),
		"delta":      db.DeltaSummary(),
		"sessions":   db.OpenSessions(),
		"loaded":     db.Loaded(),
	}
	if snap := db.MetricsSnapshot(); snap != nil {
		doc["metrics"] = snap
	}
	if infos := db.ShardInfos(); infos != nil {
		doc["shards"] = infos
		if snaps := db.ShardMetrics(); snaps != nil {
			doc["shard_metrics"] = snaps
		}
	}
	return doc
}

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060", or
// ":0" for an ephemeral port) serving DebugHandler(db). It returns the
// bound address and a function that shuts the server down.
func ServeDebug(addr string, db *DB) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: DebugHandler(db)}
	go srv.Serve(ln)
	return ln.Addr().String(), srv.Close, nil
}
