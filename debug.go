package ghostdb

// The live debug endpoint: an expvar-style HTTP surface over one DB's
// observability state, built purely on net/http. Two views of the same
// registry — machine-friendly JSON at /debug/vars (the expvar
// convention) and Prometheus text exposition at /metrics — plus the
// plan-cache and delta/checkpoint summaries, so a dashboard or a curl
// can watch a live engine without linking any client library.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// DebugHandler returns an http.Handler exposing db's live state:
//
//	GET /debug/vars   JSON: metrics registry, plan cache, delta, sessions
//	GET /metrics      Prometheus text exposition (metrics ghostdb_*)
//
// Both endpoints answer GET only (other methods get 405). Snapshots are
// taken per request; the handler never blocks queries.
func DebugHandler(db *DB) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(DebugVars(db))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		db.MetricsSnapshot().WritePrometheus(w, "ghostdb_")
		for i, snap := range db.ShardMetrics() {
			snap.WritePrometheus(w, fmt.Sprintf("ghostdb_shard%d_", i))
		}
	})
	return mux
}

// DebugVars assembles the JSON document served at /debug/vars. It is
// exported so servers embedding the debug surface (cmd/ghostdb-server)
// can merge their own sections into the same document.
func DebugVars(db *DB) map[string]any {
	doc := map[string]any{
		"plan_cache": db.PlanCacheStats(),
		"delta":      db.DeltaSummary(),
		"sessions":   db.OpenSessions(),
		"loaded":     db.Loaded(),
	}
	if snap := db.MetricsSnapshot(); snap != nil {
		doc["metrics"] = snap
	}
	if infos := db.ShardInfos(); infos != nil {
		doc["shards"] = infos
		if snaps := db.ShardMetrics(); snaps != nil {
			doc["shard_metrics"] = snaps
		}
	}
	return doc
}

// debugShutdownGrace bounds how long ServeDebug's stop function waits
// for in-flight requests to drain before forcing the server closed.
const debugShutdownGrace = 10 * time.Second

// ServeDebug starts an HTTP server on addr (e.g. "localhost:6060", or
// ":0" for an ephemeral port) serving DebugHandler(db). It returns the
// bound address and a function that shuts the server down gracefully:
// stop lets in-flight requests finish (up to a 10s grace period) before
// closing, and surfaces any error the serve loop died with. The server
// carries read/write/idle timeouts so a stalled client cannot pin a
// connection open forever.
func ServeDebug(addr string, db *DB) (string, func() error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{
		Handler:           DebugHandler(db),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	var once sync.Once
	var stopErr error
	stop := func() error {
		once.Do(func() {
			ctx, cancel := context.WithTimeout(context.Background(), debugShutdownGrace)
			defer cancel()
			stopErr = srv.Shutdown(ctx)
			if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) && stopErr == nil {
				stopErr = err
			}
		})
		return stopErr
	}
	return ln.Addr().String(), stop, nil
}
