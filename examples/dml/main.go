// dml: mutate a live GhostDB through database/sql. The bulk load builds
// write-once flash segments, but the database stays writable: INSERT,
// UPDATE and DELETE land in a RAM delta on the smart USB device
// (tombstones for deletes, shadow images for updates), queries merge the
// delta transparently, and CHECKPOINT folds everything back into fresh
// flash segments — paying the simulated erase/program bill — with
// identifiers renumbered densely.
//
//	go run ./examples/dml
package main

import (
	"database/sql"
	"fmt"
	"log"
	"time"

	// Importing the driver registers it under the name "ghostdb".
	_ "github.com/ghostdb/ghostdb/driver"
)

func main() {
	// deltalimit auto-checkpoints once the delta holds 64 entries; drop
	// the parameter to manage CHECKPOINT yourself.
	db, err := sql.Open("ghostdb", "ghostdb://?deltalimit=64")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	_, err = db.Exec(`
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);

INSERT INTO Doctor VALUES
  (1, 'Dr. Ellis', 'France'),
  (2, 'Dr. Gall',  'Spain');

INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup',   1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`)
	if err != nil {
		log.Fatal(err)
	}

	// The first query finalizes the bulk load ("in a secure setting").
	count := func(label string) {
		var n int
		if err := db.QueryRow(`SELECT COUNT(*) FROM Visit`).Scan(&n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s %d visits\n", label, n)
	}
	count("after bulk load:")

	// Live INSERT: the row lands in device RAM, visible immediately.
	res, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-03', 'Sclerosis', 2)`)
	if err != nil {
		log.Fatal(err)
	}
	n, _ := res.RowsAffected()
	fmt.Printf("INSERT affected %d row(s)\n", n)
	count("after live insert:")

	// Prepared UPDATE on a hidden column: the base climbing index keeps
	// answering for the flash segments; the engine subtracts the shadowed
	// row and re-evaluates it against the delta image.
	upd, err := db.Prepare(`UPDATE Visit SET Purpose = ? WHERE Date > ?`)
	if err != nil {
		log.Fatal(err)
	}
	defer upd.Close()
	res, err = upd.Exec("Follow-up", time.Date(2007, 1, 1, 0, 0, 0, 0, time.UTC))
	if err != nil {
		log.Fatal(err)
	}
	n, _ = res.RowsAffected()
	fmt.Printf("UPDATE affected %d row(s)\n", n)

	// DELETE cascades virtually: visits whose doctor dies go with him —
	// the flash rows still exist physically, but no query sees them.
	res, err = db.Exec(`DELETE FROM Doctor WHERE Country = 'Spain'`)
	if err != nil {
		log.Fatal(err)
	}
	n, _ = res.RowsAffected()
	fmt.Printf("DELETE affected %d doctor(s)\n", n)
	count("after cascade:")

	// CHECKPOINT merges the delta into fresh flash segments: dead rows
	// are dropped, survivors renumbered densely 1..N, indexes rebuilt,
	// and the delta's device-RAM grant released.
	res, err = db.Exec(`CHECKPOINT`)
	if err != nil {
		log.Fatal(err)
	}
	n, _ = res.RowsAffected()
	fmt.Printf("CHECKPOINT absorbed %d delta entries\n", n)
	count("after checkpoint:")

	rows, err := db.Query(`SELECT VisID, Date, Purpose FROM Visit`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	fmt.Println("surviving visits (renumbered):")
	for rows.Next() {
		var id int64
		var date time.Time
		var purpose string
		if err := rows.Scan(&id, &date, &purpose); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %d  %s  %s\n", id, date.Format("2006-01-02"), purpose)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
