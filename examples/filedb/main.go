// Filedb: a GhostDB that survives the process. The file backend maps
// the simulated smart-USB NAND onto page-aligned segment files, so the
// hidden store, commit records and CRCs live on the host filesystem —
// close the process, reopen the directory, and every checkpointed
// version is still there.
//
//	go run ./examples/filedb            # throwaway directory
//	go run ./examples/filedb /tmp/mydb  # persistent: run it twice
package main

import (
	"database/sql"
	"fmt"
	"log"
	"net/url"
	"os"
	"path/filepath"

	"github.com/ghostdb/ghostdb"
	_ "github.com/ghostdb/ghostdb/driver"
)

func main() {
	dir := filepath.Join(os.TempDir(), "ghostdb-filedb-example")
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}

	if ghostdb.PathHoldsDatabase(dir) {
		reopen(dir)
		return
	}
	create(dir)
	reopen(dir)
}

// create builds a fresh file-backed database: schema, rows, and one
// CHECKPOINT so the data is committed to the segment files before the
// engine closes.
func create(dir string) {
	fmt.Printf("creating file-backed database in %s\n", dir)
	db, err := ghostdb.Open(ghostdb.WithBackend(ghostdb.FileBackend(dir, false)))
	if err != nil {
		log.Fatal(err)
	}
	err = db.ExecScript(`
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);

INSERT INTO Doctor VALUES
  (1, 'Dr. Ellis', 'France'),
  (2, 'Dr. Gall',  'Spain');

INSERT INTO Visit VALUES
  (1, DATE '2007-01-10', 'Checkup',   1),
  (2, DATE '2007-02-01', 'Sclerosis', 1),
  (3, DATE '2007-03-05', 'Sclerosis', 2);
`)
	if err != nil {
		log.Fatal(err)
	}
	// CHECKPOINT folds the RAM delta into fresh flash segments and
	// programs the commit record — the durable point on disk.
	if _, err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	// An insert left uncommitted on purpose: the RAM delta is volatile,
	// so this row will NOT be there after reopen — exactly the
	// power-cut semantics of the real device.
	if _, err := db.Exec(
		"INSERT INTO Visit VALUES (4, DATE '2007-04-01', 'Flu', 2)"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("committed 3 visits (CHECKPOINT), left 1 visit uncommitted, closing")
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
}

// reopen comes back from the on-disk image alone — recovery replays the
// newest valid commit record, and the uncommitted delta is gone.
func reopen(dir string) {
	db, info, err := ghostdb.OpenPath(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	fmt.Printf("\nreopened %s at committed version %d (rolled back: %v)\n",
		dir, info.Version, info.RolledBack)

	res, err := db.Query(`
SELECT Vis.VisID, Vis.Date, Vis.Purpose
FROM Visit Vis
WHERE Vis.Purpose = 'Sclerosis'  /*HIDDEN*/`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("hidden-predicate query over the recovered store:")
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}
	fmt.Printf("visits on device: %d (uncommitted row rolled back)\n",
		db.RowCount("Visit"))

	// The same directory works through database/sql: backend=file
	// auto-detects the existing image and reopens instead of wiping.
	if err := db.Close(); err != nil {
		log.Fatal(err)
	}
	sqlDB, err := sql.Open("ghostdb",
		"ghostdb://?backend=file&path="+url.QueryEscape(dir))
	if err != nil {
		log.Fatal(err)
	}
	defer sqlDB.Close()
	var n int
	if err := sqlDB.QueryRow(
		"SELECT COUNT(*) FROM Visit Vis").Scan(&n); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database/sql over the same directory sees %d visits\n", n)
}
