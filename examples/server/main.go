// server: talk to a running ghostdb-server over its HTTP wire protocol
// with nothing but net/http — the paper's trusted-terminal topology with
// the terminal on the other end of a socket. Start the server first:
//
//	go run ./cmd/ghostdb-server -addr 127.0.0.1:8080 -demo 2000
//
// then:
//
//	go run ./examples/server
//
// The client never links the engine: it POSTs JSON, and the hidden
// columns stay on the server's simulated smart USB device. A saturated
// server answers 429 with a Retry-After hint instead of queueing
// without bound; the loop below honors it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"time"
)

const base = "http://127.0.0.1:8080"

func main() {
	// One parameterized point query, retried politely on 429.
	req, _ := json.Marshal(map[string]any{
		"sql":  "SELECT Doc.Name, Doc.Country FROM Doctor Doc WHERE Doc.DocID = ?",
		"args": []any{1},
	})
	var resp *http.Response
	var err error
	for {
		resp, err = http.Post(base+"/v1/query", "application/json", bytes.NewReader(req))
		if err != nil {
			log.Fatalf("is ghostdb-server running? %v", err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			break
		}
		resp.Body.Close()
		sec, _ := strconv.Atoi(resp.Header.Get("Retry-After"))
		fmt.Printf("server saturated; retrying in %ds\n", sec)
		time.Sleep(time.Duration(sec) * time.Second)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		var er struct{ Error, Kind string }
		json.NewDecoder(resp.Body).Decode(&er)
		log.Fatalf("query failed: %d %s: %s", resp.StatusCode, er.Kind, er.Error)
	}
	var qr struct {
		Columns []string    `json:"columns"`
		Types   []string    `json:"types"`
		Rows    [][]any     `json:"rows"`
		SimNS   json.Number `json:"sim_ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("columns: %v (types %v)\n", qr.Columns, qr.Types)
	for _, row := range qr.Rows {
		fmt.Printf("row: %v\n", row)
	}
	fmt.Printf("simulated device time: %sns\n", qr.SimNS)

	// The schema endpoint shows which columns the device is hiding.
	sresp, err := http.Get(base + "/v1/schema")
	if err != nil {
		log.Fatal(err)
	}
	defer sresp.Body.Close()
	var schema struct {
		Tables []struct {
			Name    string `json:"name"`
			Columns []struct {
				Name   string `json:"name"`
				Hidden bool   `json:"hidden"`
			} `json:"columns"`
		} `json:"tables"`
	}
	if err := json.NewDecoder(sresp.Body).Decode(&schema); err != nil {
		log.Fatal(err)
	}
	for _, tb := range schema.Tables {
		hidden := 0
		for _, c := range tb.Columns {
			if c.Hidden {
				hidden++
			}
		}
		fmt.Printf("table %s: %d columns, %d hidden\n", tb.Name, len(tb.Columns), hidden)
	}
}
