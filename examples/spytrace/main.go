// Spytrace: demo phase 1 — "checking security". Runs queries with full
// payload capture and shows exactly what a pirate (e.g. a Trojan horse on
// the terminal) would observe on the wires, then runs the leak auditor to
// prove no hidden value ever crossed into the spy's view.
//
//	go run ./examples/spytrace
package main

import (
	"fmt"
	"log"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/trace"
)

func main() {
	ds := ghostdb.GenerateDataset(ghostdb.ScaleOf(20_000))
	db, err := ghostdb.Open(ghostdb.WithCapture(ghostdb.CaptureFull))
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadDataset(ds); err != nil {
		log.Fatal(err)
	}

	query := `SELECT Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE Vis.Date > 05-11-2006 AND Vis.Purpose = 'Sclerosis'
AND Med.Type = 'Antibiotic'
AND Med.MedID = Pre.MedID AND Vis.VisID = Pre.VisID`

	res, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query returned %d rows (delivered only to the secure display)\n\n", len(res.Rows))

	spy := db.Recorder().SpyView()
	fmt.Printf("=== what the spy sees: %d messages ===\n", len(spy))
	for i, e := range spy {
		if i == 12 {
			fmt.Printf("  ... %d more messages of the same kinds ...\n", len(spy)-12)
			break
		}
		fmt.Println(" ", e.String())
	}

	fmt.Println("\n=== per-channel totals ===")
	for _, tot := range trace.Totals(spy) {
		fmt.Printf("  %-8s -> %-8s %-11s %5d msgs %10d bytes\n",
			tot.From, tot.To, tot.Kind, tot.Messages, tot.Bytes)
	}

	// The secure channel is invisible to the spy.
	all := db.Recorder().Events()
	secure := 0
	for _, e := range all {
		if !e.SpyVisible() {
			secure++
		}
	}
	fmt.Printf("\nsecure device->display messages hidden from the spy: %d\n", secure)

	// The auditor scans every spy-visible payload for values stored in
	// hidden columns.
	leaks := trace.Audit(all, db.HiddenValues().Contains)
	fmt.Printf("\n=== leak audit over %d hidden values ===\n", db.HiddenValues().Len())
	if len(leaks) == 0 {
		fmt.Println("NO LEAKS: the spy learned only the query text and visible data,")
		fmt.Println("exactly the guarantee of the paper's Section 2.")
	} else {
		fmt.Printf("LEAKED %d hidden values! first: %v\n", len(leaks), leaks[0])
	}
}
