// prepared: parameterized queries and the shared plan cache through
// database/sql. One '?'-placeholder statement compiles once — parse,
// bind, plan enumeration, optimizer choice — and then runs many times
// with fresh bindings, which is how a production front end should talk
// to GhostDB: the host-side planning cost is paid per query *shape*,
// not per query.
//
//	go run ./examples/prepared
package main

import (
	"context"
	"database/sql"
	"fmt"
	"log"
	"time"

	"github.com/ghostdb/ghostdb/driver"
)

func main() {
	db, err := sql.Open("ghostdb", "ghostdb://?usb=high&fpr=0.01")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Stage the schema, then drive the bulk load with one prepared
	// INSERT per table: placeholders work in Exec too.
	if _, err := db.Exec(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);`); err != nil {
		log.Fatal(err)
	}
	insDoc, err := db.Prepare(`INSERT INTO Doctor VALUES (?, ?, ?)`)
	if err != nil {
		log.Fatal(err)
	}
	for i, d := range []struct{ name, country string }{
		{"Ellis", "France"}, {"Gall", "Spain"}, {"Okafor", "Nigeria"},
	} {
		if _, err := insDoc.Exec(int64(i+1), d.name, d.country); err != nil {
			log.Fatal(err)
		}
	}
	insDoc.Close()
	insVisit, err := db.Prepare(`INSERT INTO Visit VALUES (?, ?, ?, ?)`)
	if err != nil {
		log.Fatal(err)
	}
	for i, v := range []struct {
		date    time.Time
		purpose string
		doc     int64
	}{
		{time.Date(2006, 1, 10, 0, 0, 0, 0, time.UTC), "Checkup", 1},
		{time.Date(2006, 11, 20, 0, 0, 0, 0, time.UTC), "Sclerosis", 2},
		{time.Date(2007, 2, 1, 0, 0, 0, 0, time.UTC), "Sclerosis", 1},
		{time.Date(2007, 3, 5, 0, 0, 0, 0, time.UTC), "Checkup", 3},
	} {
		if _, err := insVisit.Exec(int64(i+1), v.date, v.purpose, v.doc); err != nil {
			log.Fatal(err)
		}
	}
	insVisit.Close()

	// One statement, many bindings. Vis.Purpose is HIDDEN: the bound
	// value is evaluated inside the device, and the statement's shape —
	// not the parameter — is what the wire (and the plan cache key) see.
	stmt, err := db.Prepare(`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = ? AND Vis.DocID = Doc.DocID`)
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()

	for _, purpose := range []string{"Checkup", "Sclerosis", "Surgery"} {
		rows, err := stmt.Query(purpose)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", purpose)
		n := 0
		for rows.Next() {
			var visID int64
			var docName string
			if err := rows.Scan(&visID, &docName); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  visit %d by Dr. %s\n", visID, docName)
			n++
		}
		if err := rows.Err(); err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			fmt.Println("  (none)")
		}
		rows.Close()
	}

	// Even an unprepared Query reuses the compilation when the same
	// shape repeats: the plan cache is shared by every session.
	rows, err := db.Query(`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
		WHERE Vis.Purpose = ? AND Vis.DocID = Doc.DocID`, "Checkup")
	if err != nil {
		log.Fatal(err)
	}
	rows.Close()

	// The statement compiled once (one miss); the ad-hoc Query of the
	// same shape hit. Unwrap the driver connection for the counters.
	conn, err := db.Conn(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	defer conn.Close()
	if err := conn.Raw(func(dc any) error {
		engine := dc.(*driver.Conn).Session().DB()
		fmt.Printf("\nplan cache: %s\n", engine.PlanCacheStats())
		return nil
	}); err != nil {
		log.Fatal(err)
	}
}
