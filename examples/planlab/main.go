// Planlab: demo phases 2 and 3 — "testing the query engine ... and
// playing a game". Enumerates every query execution plan for the demo
// query (each visible predicate pre- or post-filtered, with and without
// cross-filtering), executes them all, and prints the Figure 6 style
// comparison: execution time and RAM consumption per plan, with the
// operator breakdown of the winner. Try to guess the best plan before
// looking!
//
//	go run ./examples/planlab
//	go run ./examples/planlab -scale 200000 -sel 0.5
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"github.com/ghostdb/ghostdb"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/stats"
)

func main() {
	scale := flag.Int("scale", 50_000, "prescriptions in the dataset")
	sel := flag.Float64("sel", 0.19, "selectivity of the visible date predicate")
	flag.Parse()

	ds := ghostdb.GenerateDataset(ghostdb.ScaleOf(*scale))
	db, err := ghostdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	if err := db.LoadDataset(ds); err != nil {
		log.Fatal(err)
	}

	cutoff := datagen.DateCutoff(*sel)
	query := fmt.Sprintf(`SELECT Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE Vis.Date > '%s' AND Vis.Purpose = 'Sclerosis' AND Med.Type = 'Antibiotic'
AND Med.MedID = Pre.MedID AND Vis.VisID = Pre.VisID`, cutoff)

	q, err := db.Prepare(query)
	if err != nil {
		log.Fatal(err)
	}
	specs := db.Plans(q)
	fmt.Printf("the demo query with Vis.Date selectivity %.0f%% has %d candidate plans\n\n",
		*sel*100, len(specs))

	type row struct {
		label   string
		desc    string
		simTime time.Duration
		ram     int64
		rows    int
		rep     *stats.Report
	}
	var rows []row
	for _, spec := range specs {
		res, err := db.QueryWithPlan(q, spec)
		if err != nil {
			log.Fatalf("%s: %v", spec.Label, err)
		}
		rows = append(rows, row{
			label:   spec.Label,
			desc:    spec.Describe(q),
			simTime: res.Report.TotalTime,
			ram:     res.Report.RAMHigh,
			rows:    len(res.Rows),
			rep:     res.Report,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].simTime < rows[j].simTime })

	fmt.Println("=== Figure 6: execution time per plan (best first) ===")
	worst := rows[len(rows)-1].simTime
	for _, r := range rows {
		barLen := int(float64(r.simTime) / float64(worst) * 40)
		fmt.Printf("  %-4s %8.2fms  ram %7s  %s\n       %s\n",
			r.label, float64(r.simTime)/1e6, stats.FormatBytes(r.ram),
			bar(barLen), r.desc)
	}

	auto, err := db.Query(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nthe optimizer picked %s (%v)", auto.Spec.Label, auto.Report.TotalTime)
	if auto.Spec.Label == rows[0].label {
		fmt.Println(" — the winner. You'd have needed a good eye to beat it.")
	} else {
		fmt.Printf("; the actual winner was %s (%v).\n", rows[0].label, rows[0].simTime)
	}

	fmt.Println("\n=== operator popup for the winning plan ===")
	fmt.Print(rows[0].rep.String())
}

func bar(n int) string {
	b := make([]byte, n+1)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
