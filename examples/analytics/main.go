// analytics: aggregation over hidden data. The visit purposes and the
// doctor assignments below are HIDDEN — they live encrypted on the
// smart USB key and never reach the untrusted PC — yet GROUP BY,
// HAVING, ORDER BY and DISTINCT work on them unchanged: the device
// streams the matching rows to the secure display, and the display
// groups and orders them locally. The spy on the PC sees only the query
// text and the visible data it always could.
//
//	go run ./examples/analytics
package main

import (
	"database/sql"
	"fmt"
	"log"
	"time"

	_ "github.com/ghostdb/ghostdb/driver" // registers the "ghostdb" driver
)

func main() {
	db, err := sql.Open("ghostdb", "ghostdb://?usb=high&fpr=0.01")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);`); err != nil {
		log.Fatal(err)
	}
	for i, d := range []struct{ name, country string }{
		{"Ellis", "France"}, {"Gall", "Spain"}, {"Okafor", "Nigeria"},
	} {
		if _, err := db.Exec(`INSERT INTO Doctor VALUES (?, ?, ?)`, int64(i+1), d.name, d.country); err != nil {
			log.Fatal(err)
		}
	}
	visits := []struct {
		purpose string
		doc     int64
		day     int
	}{
		{"Checkup", 1, 10}, {"Sclerosis", 1, 12}, {"Sclerosis", 2, 14},
		{"Checkup", 2, 15}, {"Sclerosis", 1, 20}, {"Oncology", 3, 21},
		{"Checkup", 3, 22}, {"Sclerosis", 3, 25},
	}
	for i, v := range visits {
		date := time.Date(2006, 11, v.day, 0, 0, 0, 0, time.UTC)
		if _, err := db.Exec(`INSERT INTO Visit VALUES (?, ?, ?, ?)`, int64(i+1), date, v.purpose, v.doc); err != nil {
			log.Fatal(err)
		}
	}

	// GROUP BY over a hidden column: visit purposes never leave the
	// device unencrypted, the counts are computed on the secure display.
	fmt.Println("visits per (hidden) purpose:")
	rows, err := db.Query(`SELECT Purpose, COUNT(*) FROM Visit GROUP BY Purpose ORDER BY COUNT(*) DESC, Purpose`)
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var purpose string
		var n int64
		if err := rows.Scan(&purpose, &n); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s %d\n", purpose, n)
	}
	rows.Close()

	// A prepared aggregate shape: placeholders bind in WHERE and HAVING.
	stmt, err := db.Prepare(`SELECT Doc.Country, COUNT(*), MIN(Vis.Date), MAX(Vis.Date)
FROM Visit Vis, Doctor Doc
WHERE Vis.Date >= ?
GROUP BY Doc.Country
HAVING COUNT(*) >= ?
ORDER BY COUNT(*) DESC, Doc.Country`)
	if err != nil {
		log.Fatal(err)
	}
	defer stmt.Close()
	fmt.Println("\nbusy countries (>= 2 visits since Nov 12, via the hidden doctor link):")
	rs, err := stmt.Query(time.Date(2006, 11, 12, 0, 0, 0, 0, time.UTC), int64(2))
	if err != nil {
		log.Fatal(err)
	}
	for rs.Next() {
		var country string
		var n int64
		var first, last time.Time
		if err := rs.Scan(&country, &n, &first, &last); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %d visits  (%s .. %s)\n",
			country, n, first.Format("2006-01-02"), last.Format("2006-01-02"))
	}
	rs.Close()

	// DISTINCT + top-K: the sort runs as a bounded heap on the display.
	fmt.Println("\nlatest distinct purposes:")
	rows, err = db.Query(`SELECT DISTINCT Purpose FROM Visit ORDER BY Purpose DESC LIMIT 2`)
	if err != nil {
		log.Fatal(err)
	}
	for rows.Next() {
		var purpose string
		if err := rows.Scan(&purpose); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", purpose)
	}
	rows.Close()
}
