// faulty: surviving a hostile device. A fault plan makes the simulated
// smart USB key misbehave deterministically — here transient flash read
// errors (absorbed by the engine's retry-with-backoff) plus a power cut
// at a fixed operation count (the key is yanked mid-query). CHECKPOINT
// commits by flipping one versioned A/B record, so recovery from a
// flash image always lands on exactly the last committed version:
// checkpointed work survives the yank, the uncommitted RAM delta is
// rolled back.
//
//	go run ./examples/faulty
package main

import (
	"fmt"
	"log"

	"github.com/ghostdb/ghostdb"
)

func main() {
	// seed makes the transient faults reproducible; cutop kills the
	// device at its 4000th post-load operation, wherever that lands.
	plan, err := ghostdb.ParseFaultPlan("seed=7,read.transient=0.01,cutop=4000")
	if err != nil {
		log.Fatal(err)
	}
	db, err := ghostdb.Open(ghostdb.WithFaultPlan(plan))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.ExecScript(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`); err != nil {
		log.Fatal(err)
	}

	// Committed work: an insert folded into flash by CHECKPOINT. The
	// commit point is a single record-page program, so this version is
	// durable the instant Checkpoint returns.
	if _, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-05', 'Sclerosis', 2)`); err != nil {
		log.Fatal(err)
	}
	if _, err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("checkpoint committed: version 1 is durable")

	// Uncommitted work: this update lives only in the device's RAM delta
	// and will be lost when the power goes.
	if _, err := db.Exec(`UPDATE Visit SET Purpose = 'Recovered' WHERE VisID = 2`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("volatile update applied (RAM delta only, not checkpointed)")

	// Keep querying until the fault plan yanks the key. Transient read
	// faults along the way are retried invisibly; the power cut is not.
	const q = `SELECT COUNT(*) FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`
	var survived int
	for i := 0; i < 10_000; i++ {
		if _, err := db.Query(q); err != nil {
			if !ghostdb.IsDeviceDead(err) {
				log.Fatal(err)
			}
			break
		}
		survived++
	}
	fmt.Printf("device died after %d more queries: %v\n", survived, db.FatalError())
	if m, ok := db.MetricsSnapshot().Get("faults_retried_total"); ok {
		fmt.Printf("transient faults absorbed by retry before the cut: %d\n", m.Value)
	}

	// Forensic recovery: image the dead key's flash and rebuild. The A/B
	// record pair guarantees we land on exactly version 1 — the committed
	// insert is there, the volatile update is gone.
	snap, err := db.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	rdb, info, err := ghostdb.Recover(snap)
	if err != nil {
		log.Fatal(err)
	}
	defer rdb.Close()
	fmt.Printf("recovered at version %d (rolled back: %v)\n", info.Version, info.RolledBack)

	res, err := rdb.Query(q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sclerosis visits after recovery: %v (committed insert kept, volatile update rolled back)\n",
		res.Rows[0][0])
}
