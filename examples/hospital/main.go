// Hospital: the paper's full demonstration scenario (Section 5) — the
// Figure 3 diabetes-clinic schema with a synthetic dataset, running the
// demo query of Section 4 under the optimizer and printing the execution
// report the demo GUI displays per operator.
//
//	go run ./examples/hospital            # 20K prescriptions
//	go run ./examples/hospital -scale 1000000   # the paper's scale
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/ghostdb/ghostdb"
)

// demoQuery is the query of Section 4, verbatim.
const demoQuery = `SELECT
Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE
Vis.Date > 05-11-2006 /*VISIBLE*/
AND Vis.Purpose = "Sclerosis" /*HIDDEN*/
AND Med.Type = "Antibiotic"  /*VISIBLE*/
AND Med.MedID = Pre.MedID
AND Vis.VisID = Pre.VisID`

func main() {
	scale := flag.Int("scale", 20_000, "prescriptions in the synthetic dataset")
	flag.Parse()

	fmt.Printf("generating hospital dataset (%d prescriptions)...\n", *scale)
	ds := ghostdb.GenerateDataset(ghostdb.ScaleOf(*scale))

	db, err := ghostdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("loading: visible columns to the public store, hidden columns,")
	fmt.Println("SKTs and climbing indexes to the smart USB device...")
	if err := db.LoadDataset(ds); err != nil {
		log.Fatal(err)
	}
	st := db.Storage()
	fmt.Printf("\ndevice flash footprint: base columns %.1f MB, SKTs %.1f MB, climbing indexes %.1f MB\n",
		mb(st.BaseColumns), mb(st.SKTs), mb(st.Climbing))

	fmt.Println("\nrunning the demo query (optimizer picks the plan):")
	fmt.Println(demoQuery)
	res, err := db.Query(demoQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d result rows; first few:\n", len(res.Rows))
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Println("  ...")
			break
		}
		fmt.Println("  ", row)
	}
	fmt.Println("\nexecution report (the demo GUI's operator popups):")
	fmt.Print(res.Report.String())

	q, err := db.Prepare(demoQuery)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan explanation:")
	fmt.Print(db.Explain(q, res.Spec))
}

func mb(b int64) float64 { return float64(b) / (1 << 20) }
