// Quickstart: create a two-table GhostDB with a HIDDEN column, load a few
// rows, and run a query mixing visible and hidden predicates.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/ghostdb/ghostdb"
)

func main() {
	db, err := ghostdb.Open()
	if err != nil {
		log.Fatal(err)
	}

	// The paper's DDL: standard CREATE TABLE plus the HIDDEN keyword on
	// sensitive columns. Hidden columns live only on the smart USB
	// device; visible columns and all primary keys stay public.
	err = db.ExecScript(`
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);

INSERT INTO Doctor VALUES
  (1, 'Dr. Ellis', 'France'),
  (2, 'Dr. Gall',  'Spain'),
  (3, 'Dr. Novak', 'France');

INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup',   1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1),
  (4, DATE '2006-12-24', 'Flu',       2),
  (5, DATE '2007-03-05', 'Sclerosis', 3);
`)
	if err != nil {
		log.Fatal(err)
	}

	// An SPJ query over both worlds. Vis.Purpose is hidden: its
	// predicate runs only inside the device. Doc.Country is visible:
	// the untrusted side evaluates it and ships the matching IDs in.
	res, err := db.Query(`
SELECT Vis.VisID, Vis.Date, Vis.Purpose, Doc.Name
FROM Visit Vis, Doctor Doc
WHERE Vis.Purpose = 'Sclerosis'  /*HIDDEN*/
  AND Doc.Country = 'France'     /*VISIBLE*/
  AND Vis.DocID = Doc.DocID`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("columns:", res.Columns)
	for _, row := range res.Rows {
		fmt.Println("  ", row)
	}
	fmt.Printf("\nplan %s finished in %v simulated device time\n",
		res.Spec.Label, res.Report.TotalTime)
	fmt.Printf("device RAM peak: %d bytes of the %d-byte budget\n",
		res.Report.RAMHigh, db.Device().RAM.Budget())
}
