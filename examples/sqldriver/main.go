// sqldriver: talk to GhostDB purely through database/sql — no ghostdb
// API in sight. An ordinary Go application gets hidden-column privacy
// without changing how it issues queries, which is the paper's demo
// promise ("queries need no changes").
//
//	go run ./examples/sqldriver
package main

import (
	"database/sql"
	"fmt"
	"log"
	"sync"
	"time"

	// Importing the driver registers it under the name "ghostdb".
	_ "github.com/ghostdb/ghostdb/driver"
)

func main() {
	// The DSN picks the simulated hardware: the paper's 2007 smart USB
	// stick on the future 480 Mb/s bus, plus a device-side index on the
	// visible Doctor.Country column (Figure 4).
	db, err := sql.Open("ghostdb", "ghostdb://?usb=high&fpr=0.01&deviceindex=Doctor.Country")
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// DDL and INSERTs stage the bulk load. HIDDEN columns live only on
	// the device; everything else (and every primary key) is public.
	_, err = db.Exec(`
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(40),
  Country CHAR(20));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);

INSERT INTO Doctor VALUES
  (1, 'Dr. Ellis', 'France'),
  (2, 'Dr. Gall',  'Spain'),
  (3, 'Dr. Novak', 'France');

INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup',   1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1),
  (4, DATE '2006-12-24', 'Flu',       2),
  (5, DATE '2007-03-05', 'Sclerosis', 3);`)
	if err != nil {
		log.Fatal(err)
	}

	// The first query finalizes the load and runs through the standard
	// rows interface. Vis.Purpose is hidden: its predicate never leaves
	// the device. Doc.Country is visible and device-indexed.
	rows, err := db.Query(`
SELECT Vis.VisID, Vis.Date, Vis.Purpose, Doc.Name
FROM Visit Vis, Doctor Doc
WHERE Vis.Purpose = 'Sclerosis'
  AND Doc.Country = 'France'
  AND Vis.DocID = Doc.DocID`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sclerosis visits to French doctors:")
	for rows.Next() {
		var visID int64
		var date time.Time
		var purpose, name string
		if err := rows.Scan(&visID, &date, &purpose, &name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  visit %d on %s: %s with %s\n", visID, date.Format("2006-01-02"), purpose, name)
	}
	rows.Close()
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}

	// database/sql pools connections; each is a session on the one
	// shared engine, and the simulated device serializes them. Hammer
	// it from a few goroutines to show the pool working.
	var wg sync.WaitGroup
	counts := make([]int, 4)
	for g := range counts {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				var n int
				rs, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`)
				if err != nil {
					log.Fatal(err)
				}
				for rs.Next() {
					n++
				}
				rs.Close()
				counts[g] = n
			}
		}(g)
	}
	wg.Wait()
	fmt.Printf("4 goroutines x 5 queries through the pool, each saw %d rows\n", counts[0])
}
