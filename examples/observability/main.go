// observability: watching a live GhostDB engine. This example drives a
// small workload and shows every observability surface the engine has:
// EXPLAIN ANALYZE with per-operator estimated vs actual rows, query
// tracing hooks and the built-in slow-query logger, the metrics
// registry (DB-wide and per-session snapshots), the delta/checkpoint
// summary, and the HTTP debug endpoint (/debug/vars JSON + /metrics
// Prometheus text).
//
//	go run ./examples/observability
package main

import (
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"github.com/ghostdb/ghostdb"
)

func main() {
	// A tracing hook sees every query's start/finish/error; the slow-query
	// option logs (and counts) anything at or over the threshold.
	var finished int
	db, err := ghostdb.Open(
		ghostdb.WithQueryHook(func(ev ghostdb.QueryEvent) {
			if ev.Phase == ghostdb.QueryFinish {
				finished++
			}
		}),
		ghostdb.WithSlowQuery(50*time.Millisecond, nil),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if err := db.ExecScript(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`); err != nil {
		log.Fatal(err)
	}

	// EXPLAIN ANALYZE runs the statement and lines the optimizer's
	// cardinality estimates up against what the executor measured. The
	// same text flows through any SQL path ("EXPLAIN ANALYZE SELECT...");
	// here we use the structured API and render it ourselves.
	a, err := db.ExplainAnalyze(`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
WHERE Vis.Purpose = 'Sclerosis' AND Doc.Country = 'France' AND Vis.DocID = Doc.DocID`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(a.Text())

	// Live DML feeds the delta gauges; CHECKPOINT moves them back to
	// zero and bumps the checkpoint counters.
	if _, err := db.Exec(`INSERT INTO Visit VALUES (4, DATE '2007-03-05', 'Flu', 2)`); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndelta before checkpoint: %+v\n", db.DeltaSummary())
	if _, err := db.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta after checkpoint:  %+v\n", db.DeltaSummary())

	// The metrics registry: lock-free counters and log-scale histograms
	// fed by every query, DML statement and checkpoint.
	fmt.Printf("\nhooks saw %d queries finish; registry:\n", finished)
	for _, m := range db.MetricsSnapshot() {
		if m.Hist != nil {
			fmt.Printf("  %-28s count=%d p50=%v\n", m.Name, m.Hist.Count, time.Duration(m.Hist.Quantile(0.5)))
		} else if m.Value != 0 {
			fmt.Printf("  %-28s %d\n", m.Name, m.Value)
		}
	}

	// The debug endpoint serves the same snapshot over HTTP — JSON at
	// /debug/vars, Prometheus text exposition at /metrics.
	addr, stop, err := ghostdb.ServeDebug("127.0.0.1:0", db)
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Printf("\nGET http://%s/metrics (first lines):\n", addr)
	for i, line := range strings.Split(string(body), "\n") {
		if i == 6 {
			break
		}
		fmt.Println(" ", line)
	}
}
