// sharded: one logical GhostDB split across four simulated devices.
// The fact table is partitioned on its dense primary key, dimensions
// are replicated, and root-rooted queries run scatter-gather: every
// shard executes the plan over its partition in parallel and the host
// merges root-ID streams, aggregate partials and top-K candidates.
// Reported simulated time is the max over shards — the devices run
// concurrently — so the same query gets cheaper as shards are added.
//
//	go run ./examples/sharded
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/ghostdb/ghostdb"
)

const aggregate = `SELECT COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre WHERE Pre.Quantity > 2`

func main() {
	// The same synthetic hospital dataset, loaded twice: once on the
	// classic single-device engine, once split over four devices.
	ds := ghostdb.GenerateDataset(ghostdb.ScaleOf(5000))

	single, err := ghostdb.Open()
	if err != nil {
		log.Fatal(err)
	}
	defer single.Close()
	if err := single.LoadDataset(ds); err != nil {
		log.Fatal(err)
	}

	sharded, err := ghostdb.Open(ghostdb.WithShards(4))
	if err != nil {
		log.Fatal(err)
	}
	defer sharded.Close()
	if err := sharded.LoadDataset(ds); err != nil {
		log.Fatal(err)
	}

	// The scatter-gather aggregate: each shard scans only its quarter of
	// the fact table; the host absorbs the raw accumulator states, so
	// COUNT and AVG are exact across shards.
	r1, err := single.Query(aggregate)
	if err != nil {
		log.Fatal(err)
	}
	r4, err := sharded.Query(aggregate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("aggregate on 1 device:  rows=%v  sim=%v\n", r1.Rows[0], r1.Report.TotalTime)
	fmt.Printf("aggregate on 4 devices: rows=%v  sim=%v (max over shards)\n", r4.Rows[0], r4.Report.TotalTime)
	fmt.Printf("simulated speedup: %.2fx\n\n", float64(r1.Report.TotalTime)/float64(r4.Report.TotalTime))

	// Per-shard execution reports ride along on every scattered result.
	for s, rep := range r4.ShardReports {
		if rep != nil {
			fmt.Printf("  shard %d: %v simulated, %d flash page reads\n", s, rep.TotalTime, rep.Flash.PageReads)
		}
	}
	fmt.Println()

	// DML routes by shard: the new prescription lands on the device that
	// owns its key range slot; CHECKPOINT merges every shard's delta in
	// parallel.
	next, err := sharded.NextID("Prescription")
	if err != nil {
		log.Fatal(err)
	}
	stmt := fmt.Sprintf("INSERT INTO Prescription VALUES (%d, 7, 1, DATE '2007-05-01', 1, 1)", next)
	if _, err := sharded.Exec(stmt); err != nil {
		log.Fatal(err)
	}
	if _, err := sharded.Exec("DELETE FROM Prescription WHERE Quantity BETWEEN 90 AND 94"); err != nil {
		log.Fatal(err)
	}
	if n, err := sharded.Checkpoint(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("CHECKPOINT absorbed %d delta entries across the shard set\n\n", n)
	}

	// ShardInfos summarizes the partitioning for monitoring surfaces
	// (the same data the /debug/vars endpoint serves as "shards").
	for _, si := range sharded.ShardInfos() {
		fmt.Printf("shard %d: %5d root rows, %v simulated, %d B flash\n",
			si.Shard, si.RootRows, si.SimTime, si.Storage.Total)
	}
	fmt.Println()

	// EXPLAIN ANALYZE prints one estimated-vs-actual operator table per
	// shard on a sharded DB.
	a, err := sharded.ExplainAnalyze(aggregate)
	if err != nil {
		log.Fatal(err)
	}
	text := a.Text()
	if i := strings.Index(text, "shard 1:"); i >= 0 {
		text = text[:i] // one shard's table is enough for the demo
	}
	fmt.Print(text)
}
