package ghostdb_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/ghostdb/ghostdb"
)

func openDebugDB(t *testing.T, opts ...ghostdb.Option) *ghostdb.DB {
	t.Helper()
	db, err := ghostdb.Open(opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	err = db.ExecScript(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(100) HIDDEN,
  DocID REFERENCES Doctor(DocID) HIDDEN);
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
INSERT INTO Visit VALUES
  (1, DATE '2006-01-10', 'Checkup', 1),
  (2, DATE '2006-11-20', 'Sclerosis', 2),
  (3, DATE '2007-02-01', 'Sclerosis', 1);
`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// TestServeDebug boots the debug endpoint on an ephemeral port and
// checks both exposition formats against a live engine.
func TestServeDebug(t *testing.T) {
	db := openDebugDB(t)
	if _, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`); err != nil {
		t.Fatal(err)
	}

	addr, stop, err := ghostdb.ServeDebug("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) (string, string) {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	body, ctype := get("/debug/vars")
	if !strings.Contains(ctype, "application/json") {
		t.Fatalf("/debug/vars content type = %q", ctype)
	}
	var doc struct {
		Metrics   map[string]json.RawMessage   `json:"metrics"`
		PlanCache struct{ Hits, Misses int64 } `json:"plan_cache"`
		Sessions  int                          `json:"sessions"`
		Loaded    bool                         `json:"loaded"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if !doc.Loaded {
		t.Fatal("/debug/vars reports loaded=false after a query")
	}
	var queries int64
	if err := json.Unmarshal(doc.Metrics["queries_total"], &queries); err != nil || queries != 1 {
		t.Fatalf("queries_total = %s (%v), want 1", doc.Metrics["queries_total"], err)
	}
	if _, ok := doc.Metrics["query_wall_ns"]; !ok {
		t.Fatalf("metrics lack query_wall_ns:\n%s", body)
	}

	prom, ctype := get("/metrics")
	if !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics content type = %q", ctype)
	}
	for _, want := range []string{
		"# TYPE ghostdb_queries_total counter",
		"ghostdb_queries_total 1",
		"# TYPE ghostdb_query_wall_ns histogram",
		"ghostdb_query_wall_ns_bucket{le=\"+Inf\"} 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestServeDebugSharded pins the per-shard monitoring surfaces: a
// sharded DB reports a "shards" array in /debug/vars and one prefixed
// registry per shard in the Prometheus exposition.
func TestServeDebugSharded(t *testing.T) {
	db := openDebugDB(t, ghostdb.WithShards(2))
	if _, err := db.Query(`SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'Sclerosis'`); err != nil {
		t.Fatal(err)
	}

	addr, stop, err := ghostdb.ServeDebug("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	get := func(path string) string {
		t.Helper()
		cl := &http.Client{Timeout: 5 * time.Second}
		resp, err := cl.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, %v", path, resp.StatusCode, err)
		}
		return string(body)
	}

	var doc struct {
		Shards       []ghostdb.ShardInfo `json:"shards"`
		ShardMetrics []json.RawMessage   `json:"shard_metrics"`
	}
	body := get("/debug/vars")
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if len(doc.Shards) != 2 || len(doc.ShardMetrics) != 2 {
		t.Fatalf("shards = %d entries, shard_metrics = %d, want 2 each\n%s",
			len(doc.Shards), len(doc.ShardMetrics), body)
	}
	rows := 0
	for i, si := range doc.Shards {
		if si.Shard != i {
			t.Fatalf("shard %d reports Shard=%d", i, si.Shard)
		}
		rows += si.RootRows
	}
	if rows != 3 {
		t.Fatalf("root rows over shards = %d, want 3", rows)
	}

	prom := get("/metrics")
	for _, want := range []string{
		"ghostdb_queries_total 1",
		"ghostdb_shard0_flash_page_reads_total",
		"ghostdb_shard1_flash_page_reads_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q:\n%s", want, prom)
		}
	}
}

// TestPublicObservabilityAPI exercises the re-exported hooks, EXPLAIN
// ANALYZE and snapshot surfaces through the façade.
func TestPublicObservabilityAPI(t *testing.T) {
	var finishes int
	db, err := ghostdb.Open(
		ghostdb.WithMetrics(true),
		ghostdb.WithQueryHook(func(ev ghostdb.QueryEvent) {
			if ev.Phase == ghostdb.QueryFinish {
				finishes++
			}
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.ExecScript(`
CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
`); err != nil {
		t.Fatal(err)
	}

	a, err := db.ExplainAnalyze(`SELECT Doc.DocID FROM Doctor Doc WHERE Doc.Country = 'France'`)
	if err != nil {
		t.Fatal(err)
	}
	if a.Result == nil || a.Result.Report.ResultRows != 1 || len(a.Ops) == 0 {
		t.Fatalf("analysis = %+v", a)
	}
	if finishes != 1 {
		t.Fatalf("finish hooks = %d, want 1", finishes)
	}
	var snap ghostdb.MetricsSnapshot = db.MetricsSnapshot()
	if v, ok := snap.Get("queries_total"); !ok || v.Value != 1 {
		t.Fatalf("queries_total = %+v", v)
	}
	if ds := db.DeltaSummary(); ds.Checkpoints != 0 || ds.Rows != 0 {
		t.Fatalf("delta summary = %+v", ds)
	}
}

// TestDebugMethodNotAllowed is the regression for the handler
// registration: the debug surfaces are read-only, so anything but GET
// answers 405 instead of running the handler.
func TestDebugMethodNotAllowed(t *testing.T) {
	db := openDebugDB(t)
	addr, stop, err := ghostdb.ServeDebug("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	cl := &http.Client{Timeout: 5 * time.Second}
	for _, path := range []string{"/debug/vars", "/metrics"} {
		resp, err := cl.Post("http://"+addr+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

// TestServeDebugStop is the regression for the old stop function, which
// aborted in-flight requests (srv.Close) and dropped the serve loop's
// error. The new contract: stop drains gracefully, reports nil on a
// clean shutdown, is idempotent, and the port is actually released.
func TestServeDebugStop(t *testing.T) {
	db := openDebugDB(t)
	addr, stop, err := ghostdb.ServeDebug("127.0.0.1:0", db)
	if err != nil {
		t.Fatal(err)
	}
	cl := &http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	if err := stop(); err != nil {
		t.Fatalf("stop() = %v, want nil on clean shutdown", err)
	}
	if err := stop(); err != nil {
		t.Fatalf("second stop() = %v, want the same nil", err)
	}
	if _, err := cl.Get("http://" + addr + "/debug/vars"); err == nil {
		t.Fatal("server still answering after stop")
	}

	// The address must be reusable: the listener really closed.
	addr2, stop2, err := ghostdb.ServeDebug(addr, db)
	if err != nil {
		t.Fatalf("rebinding %s after stop: %v", addr, err)
	}
	defer stop2()
	if addr2 != addr {
		t.Fatalf("rebound address = %s, want %s", addr2, addr)
	}
}
