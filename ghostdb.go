// Package ghostdb is a full reproduction of "GhostDB: Hiding Data from
// Prying Eyes" (Salperwyck, Anciaux, Benzine, Bouganim, Pucheral, Shasha —
// VLDB 2007 demo; SIGMOD 2007 companion): a database that hides sensitive
// columns on a tamper-resistant smart USB device while the rest stays on
// untrusted public storage, and answers ordinary SQL over both without
// ever letting hidden data leave the device.
//
// The smart USB device of the paper (tens of KB of RAM, NAND flash with
// asymmetric read/write costs, a 12 Mb/s USB link) is reproduced as a
// cycle-accounted simulator, the same methodology as the paper's own
// demo, which ran on "a software simulator of the USB device". All query
// costs are charged to a deterministic simulated clock.
//
// # Quick start
//
//	db, err := ghostdb.Open()
//	if err != nil { ... }
//	err = db.ExecScript(`
//	  CREATE TABLE Doctor (DocID INTEGER PRIMARY KEY, Name CHAR(40), Country CHAR(20));
//	  CREATE TABLE Visit (
//	    VisID INTEGER PRIMARY KEY,
//	    Date DATE,
//	    Purpose CHAR(100) HIDDEN,
//	    DocID REFERENCES Doctor(DocID) HIDDEN);
//	  INSERT INTO Doctor VALUES (1, 'Ellis', 'France'), (2, 'Gall', 'Spain');
//	  INSERT INTO Visit VALUES (1, DATE '2006-01-10', 'Checkup', 1);
//	`)
//	res, err := db.Query(`SELECT Vis.VisID, Doc.Name FROM Visit Vis, Doctor Doc
//	    WHERE Vis.Purpose = 'Checkup' AND Doc.Country = 'France'`)
//
// Columns marked HIDDEN live only on the device; everything else (and
// every primary key) is public. Queries need no changes: the engine
// splits the work, delegating visible selections to the untrusted side
// and running all hidden computation on the device, with data flowing
// only from public to private.
//
// # Plans
//
// The engine implements the paper's strategies — Pre-filtering,
// Post-filtering and Cross-filtering — and an optimizer that picks among
// them from exact visible counts and climbing-index statistics. Use
// Plans/QueryWithPlan to explore the plan space by hand (the demo's
// phase 3 game), and Result.Report for per-operator statistics.
//
// # Concurrency and the database/sql driver
//
// A DB is safe for concurrent use: host-side work (parsing, binding,
// plan enumeration) runs on any number of goroutines, while execution
// serializes on the device gate — there is one simulated smart USB
// device per DB, and it processes one command stream, exactly like the
// hardware token it models. DB.NewSession opens lightweight sessions
// with per-session statistics, and DB.Close shuts the instance down.
//
// Ordinary applications can skip this API entirely: the
// github.com/ghostdb/ghostdb/driver package registers a full
// database/sql driver named "ghostdb", so
//
//	import _ "github.com/ghostdb/ghostdb/driver"
//
//	db, err := sql.Open("ghostdb", "ghostdb://?usb=high&fpr=0.01")
//
// gives any Go program hidden-column privacy through the standard
// library interface — DDL and INSERTs via Exec stage the bulk load, the
// first query finalizes it, and pooled connections map onto sessions.
package ghostdb

import (
	"context"
	"log/slog"
	"time"

	"github.com/ghostdb/ghostdb/internal/bus"
	"github.com/ghostdb/ghostdb/internal/core"
	"github.com/ghostdb/ghostdb/internal/datagen"
	"github.com/ghostdb/ghostdb/internal/device"
	"github.com/ghostdb/ghostdb/internal/fault"
	"github.com/ghostdb/ghostdb/internal/metrics"
	"github.com/ghostdb/ghostdb/internal/plan"
	"github.com/ghostdb/ghostdb/internal/storage"
	"github.com/ghostdb/ghostdb/internal/trace"
)

// DB is a GhostDB instance: the visible store, the simulated smart USB
// device holding the hidden data and its indexes, and the engine that
// executes queries across them.
type DB = core.DB

// Result is a completed query with its execution report.
type Result = core.Result

// Session is one logical client of a shared DB (see DB.NewSession): many
// sessions may run queries concurrently, serialized on the device gate.
type Session = core.Session

// SessionStats is a snapshot of one session's execution state.
type SessionStats = core.SessionStats

// ErrClosed is returned by every operation on a closed DB.
var ErrClosed = core.ErrClosed

// ErrSessionClosed is returned by operations on a closed Session.
var ErrSessionClosed = core.ErrSessionClosed

// Option configures Open.
type Option = core.Option

// QueryOption adjusts one query execution.
type QueryOption = core.QueryOption

// Open creates an empty GhostDB on a simulated smart USB device.
func Open(opts ...Option) (*DB, error) { return core.Open(opts...) }

// WithProfile selects the device hardware profile (default: the 2007-era
// smart USB device of the paper's Figure 2).
func WithProfile(p device.Profile) Option { return core.WithProfile(p) }

// WithUSB selects the terminal-device channel (default: USB 2.0 full
// speed, 12 Mb/s).
func WithUSB(p bus.Profile) Option { return core.WithUSB(p) }

// WithCapture selects how much wire payload the trace records; use
// CaptureFull to run the security audit.
func WithCapture(l trace.CaptureLevel) Option { return core.WithCapture(l) }

// WithTargetFPR sets the Bloom filters' target false-positive rate
// (default 1%; false positives are always repaired exactly).
func WithTargetFPR(f float64) Option { return core.WithTargetFPR(f) }

// WithDeviceIndex additionally builds a device climbing index on a
// visible column (the paper's Figure 4 shows one on Doctor.Country),
// letting the device evaluate that column's predicates with zero bus
// traffic at extra flash cost.
func WithDeviceIndex(table, column string) Option { return core.WithDeviceIndex(table, column) }

// WithPlanCacheSize bounds the engine's compiled-plan cache (LRU
// entries); pass a negative size to disable caching.
func WithPlanCacheSize(n int) Option { return core.WithPlanCacheSize(n) }

// WithSpec forces a specific plan instead of the optimizer's choice.
func WithSpec(s PlanSpec) QueryOption { return core.WithSpec(s) }

// WithContext attaches a context to one query execution: cancellation is
// honored at execution batch boundaries and surfaces as ctx.Err().
func WithContext(ctx context.Context) QueryOption { return core.WithContext(ctx) }

// WithMetrics enables or disables the engine metrics registry (default
// enabled). Disabled, DB.MetricsSnapshot returns nil and queries skip
// all counter updates.
func WithMetrics(enabled bool) Option { return core.WithMetrics(enabled) }

// WithShards splits the database across n simulated devices: the fact
// table is partitioned over the shards while dimension tables are
// replicated, and root-rooted queries run scatter-gather with one
// goroutine per shard. n <= 1 keeps the classic single-device engine.
func WithShards(n int) Option { return core.WithShards(n) }

// ShardInfo summarizes one device shard (see DB.ShardInfos).
type ShardInfo = core.ShardInfo

// FaultPlan is a deterministic, seedable description of device failures
// — transient and permanent flash errors, torn page writes, bit flips,
// bus drops, and power cuts at a given simulated time or operation
// count — consulted by the simulated device stack on every operation.
type FaultPlan = fault.Plan

// ParseFaultPlan parses the fault-plan DSN grammar, e.g.
// "seed=42,read.transient=0.001,torn=0.01,cutop=1234".
func ParseFaultPlan(s string) (*FaultPlan, error) { return fault.ParsePlan(s) }

// WithFaultPlan injects the plan's failures into the DB's simulated
// devices. The secure-setting bulk load stays fault-free; injection
// arms when the database goes live.
func WithFaultPlan(p *FaultPlan) Option { return core.WithFaultPlan(p) }

// WithDegradedReads keeps a sharded database answering dimension-rooted
// queries from surviving replicas after a shard's device dies, instead
// of failing every query fast.
func WithDegradedReads(on bool) Option { return core.WithDegradedReads(on) }

// WithIntegrity toggles the per-page flash checksums (default on). Off
// is a benchmarking baseline that forgoes torn-write detection.
func WithIntegrity(on bool) Option { return core.WithIntegrity(on) }

// BackendConfig selects the storage backend under the device: the
// simulated NAND chip (the default) or the persistent real-file backend.
type BackendConfig = storage.Config

// SimBackend returns the simulated-backend config (the default).
func SimBackend() BackendConfig { return storage.Sim() }

// FileBackend returns a file-backend config rooted at dir. fsync makes
// every commit point flush to stable storage (durable against host power
// loss, not just process crashes).
func FileBackend(dir string, fsync bool) BackendConfig { return storage.File(dir, fsync) }

// WithBackend selects the storage backend. Open with a file backend
// CREATES the database at the configured path, wiping any previous
// contents; use OpenPath to reopen an existing file-backed database.
func WithBackend(cfg BackendConfig) Option { return core.WithBackend(cfg) }

// OpenPath reopens a file-backed database from its on-disk state,
// landing on the newest fully committed version (a process kill
// mid-commit rolls back to the previous one). See core.OpenPath.
func OpenPath(dir string, opts ...Option) (*DB, *RecoverInfo, error) {
	return core.OpenPath(dir, opts...)
}

// PathHoldsDatabase reports whether dir holds a file-backed GhostDB that
// OpenPath can reopen.
func PathHoldsDatabase(dir string) bool { return core.PathHoldsDatabase(dir) }

// Snapshot is a crash-surviving capture of a DB: per-device flash
// images plus the server-durable visible data (see DB.Snapshot and
// Recover).
type Snapshot = core.Snapshot

// RecoverInfo reports what Recover landed on.
type RecoverInfo = core.RecoverInfo

// Recover rebuilds a database from a crash snapshot, landing on exactly
// the newest fully committed CHECKPOINT version.
func Recover(snap *Snapshot, extra ...Option) (*DB, *RecoverInfo, error) {
	return core.Recover(snap, extra...)
}

// IsFaultFatal reports whether err is an unrecoverable device fault
// (permanent hardware error, power cut, bus drop, corrupt page).
func IsFaultFatal(err error) bool { return core.IsFaultFatal(err) }

// IsDeviceDead reports whether err means a whole device is gone (power
// cut or disconnect) rather than one failed operation.
func IsDeviceDead(err error) bool { return core.IsDeviceDead(err) }

// WithQueryHook registers a tracing hook that observes every query's
// start, finish and error events. Hooks run synchronously on the
// querying goroutine; keep them cheap.
func WithQueryHook(h QueryHook) Option { return core.WithQueryHook(h) }

// WithSlowQuery arms the built-in slow-query logger: queries whose
// wall-clock latency reaches d are logged through slog (Default when lg
// is nil) and counted in slow_queries_total.
func WithSlowQuery(d time.Duration, lg *slog.Logger) Option { return core.WithSlowQuery(d, lg) }

// QueryHook observes query lifecycle events (see WithQueryHook).
type QueryHook = core.QueryHook

// QueryEvent is one query lifecycle event delivered to hooks.
type QueryEvent = core.QueryEvent

// QueryPhase labels a QueryEvent: start, finish or error.
type QueryPhase = core.QueryPhase

// Query lifecycle phases.
const (
	QueryStart  = core.QueryStart
	QueryFinish = core.QueryFinish
	QueryError  = core.QueryError
)

// SlowQueryHook builds the hook WithSlowQuery installs, for use with
// WithQueryHook when combining it with other hooks.
func SlowQueryHook(min time.Duration, lg *slog.Logger) QueryHook { return core.SlowQueryHook(min, lg) }

// Analysis is the structured product of EXPLAIN [ANALYZE]: the chosen
// plan, the optimizer's cardinality estimates and — for ANALYZE — the
// executed result with per-operator estimated vs actual rows and
// timings. Produce one with DB.ExplainAnalyze / DB.ExplainOnly, or send
// the SQL statements "EXPLAIN SELECT ..." / "EXPLAIN ANALYZE SELECT ..."
// through any query path, including the database/sql driver.
type Analysis = core.Analysis

// OpAnalysis is one operator row of an EXPLAIN ANALYZE.
type OpAnalysis = core.OpAnalysis

// DeltaSummary aggregates the live-DML delta and checkpoint state (see
// DB.DeltaSummary).
type DeltaSummary = core.DeltaSummary

// MetricsSnapshot is a point-in-time copy of a metrics registry (see
// DB.MetricsSnapshot and Session.MetricsSnapshot): sorted name/value
// pairs with histogram summaries, JSON-marshalable, and renderable as
// Prometheus text exposition via WritePrometheus.
type MetricsSnapshot = metrics.Snapshot

// Metric is one entry of a MetricsSnapshot.
type Metric = metrics.Value

// PlanSpec is one concrete query plan: a strategy per predicate plus the
// cross-filtering switch.
type PlanSpec = plan.Spec

// Query is a bound query (see DB.Prepare).
type Query = plan.Query

// CompiledQuery is a compiled (parse + bind + plan-enumerate) query
// shape, possibly with '?' placeholders: produce one with DB.Compile,
// then Run it many times with fresh parameter bindings. Compilations
// are shared across sessions through the engine's plan cache.
type CompiledQuery = core.CompiledQuery

// Re-exported device and channel profiles.
var (
	// SmartUSB2007 is the paper's target hardware: 64 KB RAM, 50 MHz
	// CPU, 2 GB NAND flash with a 5x program/read cost ratio.
	SmartUSB2007 = device.SmartUSB2007
	// USBFullSpeed is the 12 Mb/s link of 2007 ("full speed").
	USBFullSpeed = bus.USBFullSpeed
	// USBHighSpeed is the 480 Mb/s link "envisioned for future
	// platforms" (Section 3).
	USBHighSpeed = bus.USBHighSpeed
)

// Trace capture levels.
const (
	CaptureMeta = trace.CaptureMeta
	CaptureFull = trace.CaptureFull
)

// Dataset is a generated synthetic database (the demo's hospital data).
type Dataset = datagen.Dataset

// DatasetConfig controls synthetic dataset generation.
type DatasetConfig = datagen.Config

// GenerateDataset builds the Figure 3 hospital dataset deterministically.
func GenerateDataset(cfg DatasetConfig) *Dataset { return datagen.Generate(cfg) }

// PaperScale is the demo's cardinality: one million prescriptions.
func PaperScale() DatasetConfig { return datagen.Default() }

// SmallScale is a laptop-friendly 20K-prescription configuration with the
// same ratios.
func SmallScale() DatasetConfig { return datagen.Small() }

// ScaleOf returns a config with the given number of prescriptions.
func ScaleOf(prescriptions int) DatasetConfig { return datagen.WithScale(prescriptions) }
